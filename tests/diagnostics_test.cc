// Unit tests for the static-analysis layer (src/analysis/): one test per
// diagnostic kind of the structural lint, the SCC stratification used by
// the engine's strata-ordered fixpoint, goal-directed reachability and
// the rule-pruning transforms (including PruneForEvaluation's
// active-domain guard), and the parser/generator lint wiring.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/analysis/reachability.h"
#include "src/analysis/stratify.h"
#include "src/ast/parser.h"
#include "src/generators/examples.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

// Parses without linting: most lint tests need programs the linted parse
// would reject.
Program RawParse(const std::string& text) {
  ParseOptions options;
  options.lint = false;
  StatusOr<Program> program = ParseProgram(text, options);
  EXPECT_TRUE(program.ok()) << program.status() << "\nwhile parsing:\n"
                            << text;
  return *program;
}

std::vector<DiagnosticKind> KindsOf(const std::vector<Diagnostic>& ds) {
  std::vector<DiagnosticKind> kinds;
  kinds.reserve(ds.size());
  for (const Diagnostic& d : ds) kinds.push_back(d.kind);
  return kinds;
}

bool HasKind(const std::vector<Diagnostic>& ds, DiagnosticKind kind) {
  return std::any_of(ds.begin(), ds.end(), [kind](const Diagnostic& d) {
    return d.kind == kind;
  });
}

// --- LintProgram: one test per diagnostic kind -------------------------

TEST(LintTest, CleanProgramHasNoDiagnostics) {
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  EXPECT_TRUE(LintProgram(program, "p").empty());
  EXPECT_TRUE(LintProgram(program).empty());
}

TEST(LintTest, EmptyProgram) {
  Program program;
  std::vector<Diagnostic> ds = LintProgram(program);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].kind, DiagnosticKind::kEmptyProgram);
  EXPECT_EQ(ds[0].severity, DiagnosticSeverity::kError);
  EXPECT_EQ(ds[0].rule_index, -1);
  EXPECT_TRUE(HasLintErrors(ds));
}

TEST(LintTest, ArityMismatchFirstUseWins) {
  Program program = RawParse(R"(
    p(X, Y) :- e(X, Y).
    q(X) :- p(X).
  )");
  std::vector<Diagnostic> ds = LintProgram(program);
  ASSERT_TRUE(HasKind(ds, DiagnosticKind::kArityMismatch));
  const Diagnostic* mismatch = nullptr;
  for (const Diagnostic& d : ds) {
    if (d.kind == DiagnosticKind::kArityMismatch) mismatch = &d;
  }
  ASSERT_NE(mismatch, nullptr);
  EXPECT_EQ(mismatch->severity, DiagnosticSeverity::kError);
  EXPECT_EQ(mismatch->predicate, "p");
  EXPECT_EQ(mismatch->rule_index, 1);  // the *second* use conflicts
  EXPECT_TRUE(HasLintErrors(ds));
}

TEST(LintTest, GoalNotIdb) {
  Program program = MustParseProgram("p(X, Y) :- e(X, Y).");
  std::vector<Diagnostic> ds = LintProgram(program, "e");
  ASSERT_TRUE(HasKind(ds, DiagnosticKind::kGoalNotIdb));
  EXPECT_TRUE(HasLintErrors(ds));
  // Same program with the IDB goal is clean.
  EXPECT_TRUE(LintProgram(program, "p").empty());
}

TEST(LintTest, UnsafeHeadVariableIsWarning) {
  // The paper's Example 6.2 base case: legal under active-domain
  // semantics, hence a warning, not an error.
  Program program = RawParse("dist0(X, X) :- .");
  std::vector<Diagnostic> ds = LintProgram(program);
  ASSERT_TRUE(HasKind(ds, DiagnosticKind::kUnsafeHeadVariable));
  EXPECT_FALSE(HasLintErrors(ds));
  for (const Diagnostic& d : ds) {
    if (d.kind == DiagnosticKind::kUnsafeHeadVariable) {
      EXPECT_EQ(d.rule_index, 0);
      EXPECT_EQ(d.predicate, "dist0");
    }
  }
}

TEST(LintTest, SingletonVariable) {
  Program program = MustParseProgram("p(X) :- e(X, Y).");
  std::vector<Diagnostic> ds = LintProgram(program);
  ASSERT_EQ(KindsOf(ds),
            std::vector<DiagnosticKind>{DiagnosticKind::kSingletonVariable});
  EXPECT_EQ(ds[0].severity, DiagnosticSeverity::kWarning);
  // A variable shared between body atoms is not a singleton.
  Program joined = MustParseProgram("p(X) :- e(X, Y), f(Y).");
  EXPECT_TRUE(LintProgram(joined).empty());
}

TEST(LintTest, DuplicateRule) {
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
    p(X, Y) :- e(X, Y).
  )");
  std::vector<Diagnostic> ds = LintProgram(program);
  ASSERT_EQ(KindsOf(ds),
            std::vector<DiagnosticKind>{DiagnosticKind::kDuplicateRule});
  EXPECT_EQ(ds[0].rule_index, 2);
  EXPECT_FALSE(HasLintErrors(ds));
}

TEST(LintTest, CrossProductJoin) {
  // f shares no variables with e: a cartesian step under every order.
  Program program = MustParseProgram("p(X, Z) :- e(X, X), f(Z, Z).");
  std::vector<Diagnostic> ds = LintProgram(program);
  ASSERT_EQ(KindsOf(ds),
            std::vector<DiagnosticKind>{DiagnosticKind::kCrossProductJoin});
  EXPECT_EQ(ds[0].severity, DiagnosticSeverity::kWarning);
  EXPECT_EQ(ds[0].rule_index, 0);
  EXPECT_EQ(ds[0].predicate, "p");

  // A chain of pairwise-shared variables connects the whole body, even
  // though the endpoints share nothing directly.
  Program chained =
      MustParseProgram("p(X, W) :- e(X, Y), f(Y, Z), g(Z, W).");
  EXPECT_FALSE(HasKind(LintProgram(chained),
                       DiagnosticKind::kCrossProductJoin));

  // Ground atoms are existence filters, not product factors.
  Program ground = MustParseProgram("p(X, Y) :- e(X, Y), c(a, b).");
  EXPECT_FALSE(HasKind(LintProgram(ground),
                       DiagnosticKind::kCrossProductJoin));

  // A single-atom body cannot cross-product.
  Program single = MustParseProgram("p(X, Y) :- e(X, Y).");
  EXPECT_FALSE(HasKind(LintProgram(single),
                       DiagnosticKind::kCrossProductJoin));

  // Three mutually disjoint groups: both detached atoms are named.
  Program triple =
      MustParseProgram("p(X, Y, Z) :- e(X, X), f(Y, Y), g(Z, Z).");
  std::vector<Diagnostic> triple_ds = LintProgram(triple);
  ASSERT_TRUE(HasKind(triple_ds, DiagnosticKind::kCrossProductJoin));
  for (const Diagnostic& d : triple_ds) {
    if (d.kind == DiagnosticKind::kCrossProductJoin) {
      EXPECT_NE(d.message.find("f, g"), std::string::npos) << d.message;
    }
  }
}

TEST(LintTest, UnusedRule) {
  // q heads a rule but appears in no body and is not the goal.
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    q(X) :- e(X, X).
  )");
  std::vector<Diagnostic> ds = LintProgram(program, "p");
  ASSERT_EQ(KindsOf(ds),
            std::vector<DiagnosticKind>{DiagnosticKind::kUnusedRule});
  EXPECT_EQ(ds[0].rule_index, 1);
  EXPECT_EQ(ds[0].predicate, "q");
}

TEST(LintTest, GoalUnreachableRule) {
  // q and r feed each other, so neither is "unused" (each occurs in a
  // body), but the island is unreachable from the goal p.
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    q(X) :- r(X).
    r(X) :- q(X).
  )");
  std::vector<Diagnostic> ds = LintProgram(program, "p");
  ASSERT_EQ(ds.size(), 2u);
  for (const Diagnostic& d : ds) {
    EXPECT_EQ(d.kind, DiagnosticKind::kGoalUnreachableRule);
  }
  EXPECT_FALSE(HasLintErrors(ds));
}

TEST(LintTest, GoalChecksSkippedWithoutGoal) {
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    q(X) :- e(X, X).
  )");
  EXPECT_TRUE(LintProgram(program).empty());
}

TEST(LintTest, FormatDiagnosticShapes) {
  Diagnostic rule_level;
  rule_level.severity = DiagnosticSeverity::kWarning;
  rule_level.kind = DiagnosticKind::kDuplicateRule;
  rule_level.rule_index = 2;
  rule_level.predicate = "q";
  rule_level.message = "rule is identical to rule 0";
  EXPECT_EQ(FormatDiagnostic(rule_level),
            "warning[duplicate-rule] rule 2 (q): rule is identical to rule 0");

  Diagnostic program_level;
  program_level.severity = DiagnosticSeverity::kError;
  program_level.kind = DiagnosticKind::kEmptyProgram;
  program_level.message = "program has no rules";
  EXPECT_EQ(FormatDiagnostic(program_level),
            "error[empty-program]: program has no rules");
}

// --- stratification ----------------------------------------------------

TEST(StratifyTest, SingleComponentProgramIsOneStratum) {
  Stratification s = StratifyProgram(TransitiveClosureProgram("e", "e"));
  ASSERT_EQ(s.strata.size(), 1u);
  EXPECT_EQ(s.strata[0], (std::vector<std::size_t>{0, 1}));
}

TEST(StratifyTest, LayeredProgramOrdersDependenciesFirst) {
  // q depends on p, r depends on q: three strata in p, q, r order.
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
    q(X, Y) :- p(X, Y), p(Y, X).
    r(X) :- q(X, X).
  )");
  Stratification s = StratifyProgram(program);
  ASSERT_EQ(s.strata.size(), 3u);
  EXPECT_EQ(s.strata[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(s.strata[1], (std::vector<std::size_t>{2}));
  EXPECT_EQ(s.strata[2], (std::vector<std::size_t>{3}));
}

TEST(StratifyTest, MutualRecursionSharesAStratum) {
  Program program = MustParseProgram(R"(
    p(X) :- e(X, Y), q(Y).
    q(X) :- f(X, Y), p(Y).
    top(X) :- p(X), q(X).
  )");
  Stratification s = StratifyProgram(program);
  ASSERT_EQ(s.strata.size(), 2u);
  EXPECT_EQ(s.strata[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(s.strata[1], (std::vector<std::size_t>{2}));
}

TEST(StratifyTest, EmptyProgramHasNoStrata) {
  EXPECT_TRUE(StratifyProgram(Program()).strata.empty());
}

// --- goal-directed reachability and pruning ----------------------------

TEST(ReachabilityTest, BackwardClosureFromGoal) {
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Z), q(Z, Y).
    q(X, Y) :- f(X, Y).
    junk(X) :- g(X).
  )");
  std::unordered_set<std::string> reachable =
      GoalReachablePredicates(program, "p");
  EXPECT_EQ(reachable.count("p"), 1u);
  EXPECT_EQ(reachable.count("q"), 1u);
  EXPECT_EQ(reachable.count("e"), 1u);
  EXPECT_EQ(reachable.count("f"), 1u);
  EXPECT_EQ(reachable.count("junk"), 0u);
  EXPECT_EQ(reachable.count("g"), 0u);
  EXPECT_EQ(GoalReachableRules(program, "p"),
            (std::vector<char>{1, 1, 0}));
}

TEST(ReachabilityTest, PruneDropsUnreachableRulesInOrder) {
  Program program = MustParseProgram(R"(
    junk(X) :- p(X, X), junk(X).
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  std::optional<Program> pruned = PruneUnreachableRules(program, "p");
  ASSERT_TRUE(pruned.has_value());
  ASSERT_EQ(pruned->rules().size(), 2u);
  EXPECT_EQ(pruned->rules()[0], program.rules()[1]);
  EXPECT_EQ(pruned->rules()[1], program.rules()[2]);
}

TEST(ReachabilityTest, PruneNoopsWhenAllReachable) {
  EXPECT_FALSE(
      PruneUnreachableRules(TransitiveClosureProgram("e", "e"), "p")
          .has_value());
}

TEST(ReachabilityTest, PruneDeclinesWhenGoalHeadsNoRule) {
  // Pruning to an empty program would silently swallow a structural
  // error (nothing derives the goal).
  Program program = MustParseProgram("p(X, Y) :- e(X, Y).");
  EXPECT_FALSE(PruneUnreachableRules(program, "nosuch").has_value());
}

TEST(ReachabilityTest, EvaluationGuardBlocksActiveDomainShrink) {
  // The retained part has an unsafe rule (zero(X) :- . enumerates the
  // active domain) and the junk rule carries a constant `a` that no
  // retained rule mentions: pruning it would remove `a` from the active
  // domain and change the goal relation. PruneForEvaluation must refuse.
  Program program = RawParse(R"(
    zero(X) :- .
    p(X) :- zero(X).
    junk(X) :- e(X, a).
  )");
  EXPECT_FALSE(PruneForEvaluation(program, "p").has_value());
  // Proof-tree pruning has no such hazard and still fires.
  std::optional<Program> pruned = PruneUnreachableRules(program, "p");
  ASSERT_TRUE(pruned.has_value());
  EXPECT_EQ(pruned->rules().size(), 2u);
}

TEST(ReachabilityTest, EvaluationGuardAllowsCoveredConstants) {
  // Same shape, but a retained rule also mentions `a`: pruning cannot
  // shrink the active domain, so the guard lets it through.
  Program program = RawParse(R"(
    zero(X) :- .
    p(X) :- zero(X), e(X, a).
    junk(X) :- e(X, a).
  )");
  std::optional<Program> pruned = PruneForEvaluation(program, "p");
  ASSERT_TRUE(pruned.has_value());
  EXPECT_EQ(pruned->rules().size(), 2u);
}

TEST(ReachabilityTest, EvaluationGuardAllowsSafePrograms) {
  // No unsafe retained rule: pruned constants are irrelevant to the goal
  // relation, so the prune fires even though `a` disappears.
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    junk(X) :- e(X, a).
  )");
  std::optional<Program> pruned = PruneForEvaluation(program, "p");
  ASSERT_TRUE(pruned.has_value());
  EXPECT_EQ(pruned->rules().size(), 1u);
}

// --- parser and generator wiring ---------------------------------------

TEST(ParserLintTest, LintedParseRejectsArityMismatch) {
  StatusOr<Program> program = ParseProgram(R"(
    p(X, Y) :- e(X, Y).
    q(X) :- p(X).
  )");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("failed lint"),
            std::string::npos);
  EXPECT_NE(program.status().message().find("arity-mismatch"),
            std::string::npos);
}

TEST(ParserLintTest, LintOffAcceptsArityMismatch) {
  ParseOptions options;
  options.lint = false;
  StatusOr<Program> program = ParseProgram(R"(
    p(X, Y) :- e(X, Y).
    q(X) :- p(X).
  )", options);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->rules().size(), 2u);
}

TEST(ParserLintTest, WarningsDoNotFailTheParse) {
  // Unsafe heads and singletons are warnings; the linted parse accepts
  // them (the repo's semantics needs `dist0(X, X) :- .`).
  StatusOr<Program> program = ParseProgram(R"(
    dist0(X, X) :- .
    p(X) :- e(X, Y).
  )");
  EXPECT_TRUE(program.ok());
}

TEST(GeneratorLintTest, GeneratorsPassTheLint) {
  // The generators run LintProgram under DATALOG_CHECK; constructing
  // them is the assertion. DistLeProgram carries the deliberately unsafe
  // base cases, so it exercises the warning-tolerant path.
  EXPECT_EQ(DistLeProgram(2).rules().size(), 7u);
  EXPECT_FALSE(HasLintErrors(LintProgram(WordProgram(3))));
  EXPECT_FALSE(HasLintErrors(LintProgram(EqualProgram(2))));
}

}  // namespace
}  // namespace datalog
