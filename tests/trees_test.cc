#include <gtest/gtest.h>

#include "src/cq/containment.h"
#include "src/trees/connectivity.h"
#include "src/trees/enumerate.h"
#include "src/trees/expansion_tree.h"
#include "src/trees/strong_mapping.h"
#include "src/util/strings.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

// The transitive-closure program of paper Example 2.5:
//   r1: p(X, Y) :- e(X, Z), p(Z, Y).
//   r0: p(X, Y) :- e0(X, Y).
Program TcProgram() {
  return MustParseProgram(R"(
    p(X, Y) :- e(X, Z), p(Z, Y).
    p(X, Y) :- e0(X, Y).
  )");
}

// Builds the Figure 2(b) proof tree over var(Π) = {$0..$5}:
//   root (p($0,$1), p($0,$1) :- e($0,$2), p($2,$1))
//   child (p($2,$1), p($2,$1) :- e($2,$0), p($0,$1))   <- reuses $0
//   leaf (p($0,$1), p($0,$1) :- e0($0,$1))
ExpansionTree Fig2ProofTree() {
  ExpansionNode leaf;
  leaf.rule = MustParseRule("p(_0, _1) :- e0(_0, _1).");
  ExpansionNode child;
  child.rule = MustParseRule("p(_2, _1) :- e(_2, _0), p(_0, _1).");
  ExpansionNode root;
  root.rule = MustParseRule("p(_0, _1) :- e(_0, _2), p(_2, _1).");
  // Rename "_k" to the canonical proof variable "$k".
  Substitution to_proof_vars;
  for (int i = 0; i < 6; ++i) {
    to_proof_vars.emplace(StrCat("_", i),
                          Term::Variable(ProofVariableName(i)));
  }
  leaf.rule = ApplySubstitution(to_proof_vars, leaf.rule);
  child.rule = ApplySubstitution(to_proof_vars, child.rule);
  root.rule = ApplySubstitution(to_proof_vars, root.rule);
  leaf.goal = leaf.rule.head();
  child.goal = child.rule.head();
  root.goal = root.rule.head();
  child.idb_positions = {1};
  root.idb_positions = {1};
  child.children.push_back(leaf);
  root.children.push_back(child);
  return ExpansionTree(root);
}

TEST(ExpansionTreeTest, IsRuleInstanceBasic) {
  Rule rule = MustParseRule("p(X, Y) :- e(X, Z), p(Z, Y).");
  EXPECT_TRUE(IsRuleInstance(rule, rule));
  EXPECT_TRUE(
      IsRuleInstance(rule, MustParseRule("p(A, B) :- e(A, C), p(C, B).")));
  EXPECT_TRUE(
      IsRuleInstance(rule, MustParseRule("p(A, A) :- e(A, A), p(A, A).")));
  EXPECT_TRUE(
      IsRuleInstance(rule, MustParseRule("p(a, B) :- e(a, c), p(c, B).")));
  // Inconsistent reuse of X.
  EXPECT_FALSE(
      IsRuleInstance(rule, MustParseRule("p(A, B) :- e(C, D), p(D, B).")));
  // Wrong predicate.
  EXPECT_FALSE(
      IsRuleInstance(rule, MustParseRule("p(A, B) :- f(A, C), p(C, B).")));
}

TEST(ExpansionTreeTest, Fig2ProofTreeValidates) {
  Program tc = TcProgram();
  ExpansionTree tree = Fig2ProofTree();
  EXPECT_TRUE(ValidateExpansionTree(tc, tree).ok());
  EXPECT_TRUE(ValidateProofTree(tc, tree).ok())
      << ValidateProofTree(tc, tree);
  EXPECT_EQ(tree.Size(), 3u);
  EXPECT_EQ(tree.Depth(), 3u);
  // It is NOT an unfolding tree: $0 is reused in the child's body although
  // it occurs above (in the root label) and not in the child's goal.
  EXPECT_FALSE(ValidateUnfoldingTree(tc, tree).ok());
}

TEST(ExpansionTreeTest, TreeToCqCollectsEdbAtoms) {
  Program tc = TcProgram();
  ConjunctiveQuery cq = TreeToCq(tc, Fig2ProofTree());
  EXPECT_EQ(cq.arity(), 2u);
  ASSERT_EQ(cq.body().size(), 3u);
  EXPECT_EQ(cq.body()[0].predicate(), "e");
  EXPECT_EQ(cq.body()[1].predicate(), "e");
  EXPECT_EQ(cq.body()[2].predicate(), "e0");
}

TEST(ExpansionTreeTest, ValidationCatchesCorruptedTrees) {
  Program tc = TcProgram();
  ExpansionTree tree = Fig2ProofTree();
  // Corrupt the goal of the root.
  ExpansionTree bad_goal = tree;
  bad_goal.mutable_root().goal = MustParseAtom("p(X, Y)");
  EXPECT_FALSE(ValidateExpansionTree(tc, bad_goal).ok());
  // Chop off the child: root rule still has an IDB subgoal.
  ExpansionTree no_child = tree;
  no_child.mutable_root().children.clear();
  EXPECT_FALSE(ValidateExpansionTree(tc, no_child).ok());
  // Rule that is no instance of any program rule.
  ExpansionTree bad_rule = tree;
  bad_rule.mutable_root().rule =
      MustParseRule("p(X, Y) :- e(Y, X), p(X, Y).");
  bad_rule.mutable_root().goal = bad_rule.root().rule.head();
  EXPECT_FALSE(ValidateExpansionTree(tc, bad_rule).ok());
}

TEST(EnumerateTest, UnfoldingTreeCountsForTransitiveClosure) {
  // For the linear TC program there is exactly one unfolding tree per
  // depth d (a chain of d-1 recursive rules followed by the base rule).
  Program tc = TcProgram();
  for (std::size_t depth = 1; depth <= 5; ++depth) {
    std::size_t count = 0;
    EnumerateOptions options;
    options.max_depth = depth;
    EnumerateUnfoldingTrees(tc, "p", options, [&](const ExpansionTree& t) {
      EXPECT_TRUE(ValidateUnfoldingTree(tc, t).ok())
          << ValidateUnfoldingTree(tc, t) << "\n"
          << t.ToString();
      ++count;
      return true;
    });
    EXPECT_EQ(count, depth);
  }
}

TEST(EnumerateTest, UnfoldingTreesOfNonlinearProgramBranch) {
  Program nl = MustParseProgram(R"(
    p(X, Y) :- p(X, Z), p(Z, Y).
    p(X, Y) :- e(X, Y).
  )");
  // depth 1: base only = 1; depth 2: base + (rec with both children base)
  // = 2; depth 3: rec children from depth-2 space (2 each) = 4, plus base
  // = 5.
  std::vector<std::size_t> expected = {1, 2, 5};
  for (std::size_t depth = 1; depth <= 3; ++depth) {
    std::size_t count = 0;
    EnumerateOptions options;
    options.max_depth = depth;
    EnumerateUnfoldingTrees(nl, "p", options, [&](const ExpansionTree& t) {
      EXPECT_TRUE(ValidateUnfoldingTree(nl, t).ok());
      ++count;
      return true;
    });
    EXPECT_EQ(count, expected[depth - 1]) << "depth " << depth;
  }
}

TEST(EnumerateTest, PaperExample25UnfoldingCq) {
  // Depth-2 unfolding of TC: (X, Y) :- e(X, Z), e0(Z, Y).
  Program tc = TcProgram();
  EnumerateOptions options;
  options.max_depth = 2;
  std::vector<ConjunctiveQuery> cqs;
  EnumerateUnfoldingTrees(tc, "p", options, [&](const ExpansionTree& t) {
    cqs.push_back(TreeToCq(tc, t));
    return true;
  });
  ASSERT_EQ(cqs.size(), 2u);
  ConjunctiveQuery expected_depth2 =
      MustParseCq("p(X, Y) :- e(X, Z), e0(Z, Y).");
  bool found = false;
  for (const ConjunctiveQuery& cq : cqs) {
    if (SortedBodyCanonicalForm(cq) ==
        SortedBodyCanonicalForm(expected_depth2)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EnumerateTest, MaxTreesCapRespected) {
  Program nl = MustParseProgram(R"(
    p(X, Y) :- p(X, Z), p(Z, Y).
    p(X, Y) :- e(X, Y).
  )");
  EnumerateOptions options;
  options.max_depth = 4;
  options.max_trees = 3;
  std::size_t count = 0;
  bool exhausted = EnumerateUnfoldingTrees(
      nl, "p", options, [&](const ExpansionTree&) {
        ++count;
        return true;
      });
  EXPECT_FALSE(exhausted);
  EXPECT_EQ(count, 3u);
}

TEST(EnumerateTest, ProofTreesAreValidAndIncludeVariableReuse) {
  Program tc = TcProgram();
  EnumerateOptions options;
  options.max_depth = 2;
  options.max_trees = 100000;
  std::size_t count = 0;
  bool saw_reuse = false;
  EnumerateProofTrees(tc, "p", options, [&](const ExpansionTree& t) {
    EXPECT_TRUE(ValidateProofTree(tc, t).ok())
        << ValidateProofTree(tc, t) << t.ToString();
    if (!ValidateUnfoldingTree(tc, t).ok()) saw_reuse = true;
    ++count;
    return true;
  });
  EXPECT_GT(count, 0u);
  EXPECT_TRUE(saw_reuse)
      << "proof-tree enumeration must include non-unfolding variable reuse";
}

TEST(EnumerateTest, BoundedExpansionsDeduplicates) {
  Program tc = TcProgram();
  EnumerateOptions options;
  options.max_depth = 4;
  UnionOfCqs expansions = BoundedExpansions(tc, "p", options);
  EXPECT_EQ(expansions.size(), 4u);  // path-1 .. path-4, pairwise distinct
}

TEST(ConnectivityTest, PaperExample53) {
  // Example 5.3: in the Fig. 2 proof tree, the occurrences of Y($1) in the
  // root and interior node are connected and distinguished; the
  // occurrences of X($0) in the root and the leaf are not connected; the
  // root occurrence of X is distinguished, the leaf one is not.
  ExpansionTree tree = Fig2ProofTree();
  TreeConnectivity connectivity(tree);
  ASSERT_EQ(connectivity.num_nodes(), 3u);
  const std::string x = ProofVariableName(0);
  const std::string y = ProofVariableName(1);
  EXPECT_TRUE(connectivity.Connected(0, 1, y));
  EXPECT_TRUE(connectivity.Connected(0, 2, y));
  EXPECT_FALSE(connectivity.Connected(0, 2, x));
  // Leaf and interior-node occurrences of X are connected to each other
  // ($0 occurs in the leaf's goal).
  EXPECT_TRUE(connectivity.Connected(1, 2, x));
  EXPECT_TRUE(connectivity.IsDistinguishedOccurrence(0, x));
  EXPECT_FALSE(connectivity.IsDistinguishedOccurrence(2, x));
  EXPECT_TRUE(connectivity.IsDistinguishedOccurrence(0, y));
  EXPECT_TRUE(connectivity.IsDistinguishedOccurrence(2, y));
}

TEST(ConnectivityTest, RenameByClassProducesEquivalentExpansionTree) {
  Program tc = TcProgram();
  ExpansionTree proof_tree = Fig2ProofTree();
  ExpansionTree renamed = TreeConnectivity(proof_tree).RenameByClass();
  EXPECT_TRUE(ValidateExpansionTree(tc, renamed).ok())
      << ValidateExpansionTree(tc, renamed) << renamed.ToString();
  // The renamed tree is the unfolding path of length 3: its CQ is
  // equivalent to e(X,Z), e(Z,W), e0(W,Y).
  ConjunctiveQuery expected =
      MustParseCq("p(X, Y) :- e(X, Z), e(Z, W), e0(W, Y).");
  ConjunctiveQuery actual = TreeToCq(tc, renamed);
  EXPECT_TRUE(IsCqContained(actual, expected));
  EXPECT_TRUE(IsCqContained(expected, actual));
}

TEST(StrongMappingTest, UnfoldingCqMapsStronglyIntoFig2Tree) {
  Program tc = TcProgram();
  ExpansionTree tree = Fig2ProofTree();
  ConjunctiveQuery theta =
      MustParseCq("p(X, Y) :- e(X, Z), e(Z, W), e0(W, Y).");
  EXPECT_TRUE(HasStrongContainmentMapping(tc, tree, theta));
}

TEST(StrongMappingTest, ConnectednessBlocksNaiveMapping) {
  // theta identifies the first and third path nodes (X = W). A plain
  // containment mapping into the proof tree's CQ exists (both map to $0),
  // but the occurrences of $0 in the root and the leaf are not connected,
  // so no STRONG mapping exists.
  Program tc = TcProgram();
  ExpansionTree tree = Fig2ProofTree();
  ConjunctiveQuery theta =
      MustParseCq("p(X, Y) :- e(X, Z), e(Z, X), e0(X, Y).");
  EXPECT_TRUE(
      FindContainmentMapping(theta, TreeToCq(tc, tree)).has_value())
      << "plain containment mapping should exist";
  EXPECT_FALSE(HasStrongContainmentMapping(tc, tree, theta));
}

TEST(StrongMappingTest, DistinguishedOccurrenceRequired) {
  // theta = p(X, Y) :- e0(X, Y): maps the base atom to the leaf's
  // e0($0, $1), but the leaf occurrence of $0 is not distinguished, so the
  // distinguished variable X of theta cannot map there strongly.
  Program tc = TcProgram();
  ExpansionTree tree = Fig2ProofTree();
  ConjunctiveQuery theta = MustParseCq("p(X, Y) :- e0(X, Y).");
  EXPECT_FALSE(HasStrongContainmentMapping(tc, tree, theta));
}

TEST(StrongMappingTest, AgreesWithContainmentIntoRenamedTree) {
  // Propositions 5.5/5.6 in miniature: a strong mapping into a proof tree
  // exists iff a plain containment mapping exists into the CQ of the
  // class-renamed expansion tree. Verified over all depth<=3 proof trees.
  Program tc = TcProgram();
  std::vector<ConjunctiveQuery> thetas = {
      MustParseCq("p(X, Y) :- e0(X, Y)."),
      MustParseCq("p(X, Y) :- e(X, Z), e0(Z, Y)."),
      MustParseCq("p(X, Y) :- e(X, Z), e(Z, W), e0(W, Y)."),
      MustParseCq("p(X, Y) :- e(X, Z), e(Z, X), e0(X, Y)."),
      MustParseCq("p(X, X) :- e(X, Z), e0(Z, X)."),
      MustParseCq("p(X, Y) :- e(X, X), e0(X, Y)."),
  };
  EnumerateOptions options;
  options.max_depth = 3;
  options.max_trees = 400;
  std::size_t checked = 0;
  EnumerateProofTrees(tc, "p", options, [&](const ExpansionTree& tree) {
    ExpansionTree renamed = TreeConnectivity(tree).RenameByClass();
    ConjunctiveQuery expansion_cq = TreeToCq(tc, renamed);
    for (const ConjunctiveQuery& theta : thetas) {
      bool strong = HasStrongContainmentMapping(tc, tree, theta);
      bool plain = FindContainmentMapping(theta, expansion_cq).has_value();
      EXPECT_EQ(strong, plain)
          << "theta: " << theta.ToString() << "\ntree:\n"
          << tree.ToString() << "renamed:\n"
          << renamed.ToString();
      ++checked;
    }
    return true;
  });
  EXPECT_GT(checked, 100u);
}

TEST(StrongMappingTest, UnionHelper) {
  Program tc = TcProgram();
  ExpansionTree tree = Fig2ProofTree();
  UnionOfCqs ucq;
  ucq.Add(MustParseCq("p(X, Y) :- e0(X, Y)."));
  EXPECT_FALSE(AnyDisjunctMapsStrongly(tc, tree, ucq));
  ucq.Add(MustParseCq("p(X, Y) :- e(X, Z), e(Z, W), e0(W, Y)."));
  EXPECT_TRUE(AnyDisjunctMapsStrongly(tc, tree, ucq));
}

}  // namespace
}  // namespace datalog
