// Unit tests for the cost-based join planning layer: ColumnIndex bucket
// statistics and the RelationIndex stats lookup, the per-(rule, delta
// position) plan cache's steady-state behavior (plans_rebuilt stays flat
// once relation sizes settle while plans_cached grows with the rounds),
// and the EvalStats counter plumbing for the planner.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/engine/database.h"
#include "src/engine/eval.h"
#include "src/engine/index.h"
#include "src/util/strings.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

TEST(ColumnIndexStatsTest, StatsTrackBucketsIncrementally) {
  Database db;
  // 3 distinct first columns with bucket sizes 1, 2, 4.
  PredicateId e = db.InternPredicate("e", 2);
  int sizes[] = {1, 2, 4};
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < sizes[k]; ++i) {
      db.AddFact("e", {StrCat("k", k), StrCat("v", k, "_", i)});
    }
  }
  RelationIndex index;
  IndexCounters counters;
  const ColumnIndex& built =
      index.Get(db.RelationOf(e), /*key_mask=*/1u, /*distinct_mask=*/2u,
                &counters);
  ColumnIndexStats stats = built.stats();
  EXPECT_EQ(stats.num_buckets, 3u);
  EXPECT_EQ(stats.rows_bucketed, 7u);
  EXPECT_EQ(stats.rows_consumed, 7u);
  EXPECT_EQ(stats.max_bucket, 4u);
  EXPECT_EQ(stats.AvgBucket(), 7u / 3u);

  // Appending rows updates the same index incrementally: the stats keep
  // up without a rebuild.
  db.AddFact("e", {"k2", "v2_extra"});
  const ColumnIndex& updated =
      index.Get(db.RelationOf(e), 1u, 2u, &counters);
  EXPECT_EQ(&updated, &built);  // same index object, caught up
  stats = updated.stats();
  EXPECT_EQ(stats.num_buckets, 3u);
  EXPECT_EQ(stats.rows_bucketed, 8u);
  EXPECT_EQ(stats.rows_consumed, 8u);
  EXPECT_EQ(stats.max_bucket, 5u);
  EXPECT_EQ(counters.index_builds, 1u);
}

TEST(ColumnIndexStatsTest, EmptyIndexReportsZeroAvgBucket) {
  ColumnIndexStats stats;
  EXPECT_EQ(stats.AvgBucket(), 0u);
}

TEST(RelationIndexTest, FindForKeyMaskReturnsWarmIndexOrNull) {
  Database db;
  PredicateId e = db.InternPredicate("e", 2);
  db.AddFact("e", {"x", "y"});
  db.AddFact("e", {"x", "z"});
  RelationIndex index;
  IndexCounters counters;
  // Cold: nothing built for any mask yet.
  EXPECT_EQ(index.FindForKeyMask(1u), nullptr);
  index.Get(db.RelationOf(e), 1u, 2u, &counters);
  const ColumnIndex* warm = index.FindForKeyMask(1u);
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(warm->key_mask(), 1u);
  EXPECT_EQ(warm->stats().num_buckets, 1u);  // one distinct first column
  EXPECT_EQ(warm->stats().rows_bucketed, 2u);
  // A different mask is still cold.
  EXPECT_EQ(index.FindForKeyMask(2u), nullptr);
  // Lookups never build: counters unchanged past the one explicit Get.
  EXPECT_EQ(counters.index_builds, 1u);

  // With two indexes on the same key mask, the pick is the one with the
  // most rows bucketed, ties broken toward the smaller distinct mask —
  // never unordered_map iteration order.
  index.Get(db.RelationOf(e), 1u, 0u, &counters);  // semi-join (thinned)
  const ColumnIndex* best = index.FindForKeyMask(1u);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->distinct_mask(), 2u);  // 2 rows bucketed beats 1
}

TEST(RelationGrowthWatermarkTest, WatermarkIsTheRowCount) {
  Relation relation(2);
  EXPECT_EQ(relation.GrowthWatermark(), 0u);
  relation.Insert({1, 2});
  relation.Insert({1, 3});
  relation.Insert({1, 2});  // duplicate: no growth
  EXPECT_EQ(relation.GrowthWatermark(), 2u);
  EXPECT_EQ(relation.GrowthWatermark(), relation.size());
}

// Steady state: on a long chain transitive closure under staged rounds
// (num_threads = 2 freezes the database per round, so rounds track the
// chain length), rounds outnumber plan rebuilds by a wide margin — the
// 2x watermark rule rebuilds a plan only logarithmically often while
// every other rule evaluation stamps the cached plan. The serial engine
// is checked too, but it is deliberately chaotic: delta scans re-check
// the relation size each step, so in-round derivations chain and the
// fixpoint lands in O(log n) rounds — too few for a steady state.
TEST(PlanCacheTest, SteadyStateStampsCachedPlans) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Z) :- e(X, Y), p(Y, Z).
  )");
  Database db;
  for (int i = 0; i < 64; ++i) {
    db.AddFact("e", {StrCat("n", i), StrCat("n", i + 1)});
  }
  EvalOptions options;  // cost_based defaults on
  options.num_threads = 2;
  EvalStats stats;
  ASSERT_TRUE(EvaluateGoal(tc, "p", db, options, &stats).ok());
  EXPECT_GT(stats.iterations, 32);
  EXPECT_GT(stats.plans_cached, 0u);
  EXPECT_GT(stats.plans_rebuilt, 0u);
  // Rebuilds are logarithmic in the relation growth; stamps scale with
  // rounds. The gap is the cache's whole point.
  EXPECT_GE(stats.plans_cached, 4 * stats.plans_rebuilt);
  // The cost model recorded its estimates for the plans it built.
  EXPECT_GT(stats.est_cost_total, 0u);
  // Greedy baseline: no cache at all, same fixpoint.
  EvalOptions greedy = options;
  greedy.cost_based = false;
  EvalStats greedy_stats;
  ASSERT_TRUE(EvaluateGoal(tc, "p", db, greedy, &greedy_stats).ok());
  EXPECT_EQ(greedy_stats.plans_cached, 0u);
  EXPECT_EQ(greedy_stats.plans_rebuilt, 0u);
  EXPECT_EQ(greedy_stats.est_cost_total, 0u);
  EXPECT_EQ(greedy_stats.facts_derived, stats.facts_derived);
  // Serial chaotic rounds collapse the round count; the plan cache
  // still answers every request, it just has fewer rounds to serve.
  EvalOptions serial = options;
  serial.num_threads = 1;
  EvalStats serial_stats;
  ASSERT_TRUE(EvaluateGoal(tc, "p", db, serial, &serial_stats).ok());
  EXPECT_EQ(serial_stats.facts_derived, stats.facts_derived);
  EXPECT_LT(serial_stats.iterations, 16);
}

// The plan cache is per (rule, delta position) and survives across
// rounds in parallel mode too, where planning happens in the serial
// pre-fan-out phase; parallel runs must agree with serial ones on the
// fixpoint and derive identical fact counts.
TEST(PlanCacheTest, ParallelRoundsShareTheCache) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Z) :- e(X, Y), p(Y, Z).
  )");
  Database db;
  for (int i = 0; i < 48; ++i) {
    db.AddFact("e", {StrCat("n", i), StrCat("n", i + 1)});
  }
  EvalOptions serial;
  EvalStats serial_stats;
  StatusOr<Database> serial_result =
      EvaluateProgram(tc, db, serial, &serial_stats);
  ASSERT_TRUE(serial_result.ok());
  EvalOptions parallel = serial;
  parallel.num_threads = 2;
  EvalStats parallel_stats;
  StatusOr<Database> parallel_result =
      EvaluateProgram(tc, db, parallel, &parallel_stats);
  ASSERT_TRUE(parallel_result.ok());
  EXPECT_EQ(parallel_result->ToString(), serial_result->ToString());
  EXPECT_EQ(parallel_stats.facts_derived, serial_stats.facts_derived);
  EXPECT_GT(parallel_stats.plans_cached, 0u);
  EXPECT_GE(parallel_stats.plans_cached, 4 * parallel_stats.plans_rebuilt);
}

TEST(EvalStatsTest, AccumulateCoversPlannerCounters) {
  EvalStats a;
  a.plans_cached = 3;
  a.plans_rebuilt = 2;
  a.est_cost_total = 40;
  EvalStats b;
  b.plans_cached = 5;
  b.plans_rebuilt = 1;
  b.est_cost_total = 7;
  a.Accumulate(b);
  EXPECT_EQ(a.plans_cached, 8u);
  EXPECT_EQ(a.plans_rebuilt, 3u);
  EXPECT_EQ(a.est_cost_total, 47u);
}

}  // namespace
}  // namespace datalog
