#include <gtest/gtest.h>

#include "src/cq/canonical_db.h"
#include "src/engine/eval.h"
#include "src/engine/random_db.h"
#include "src/util/strings.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

Database GraphDb(const std::vector<std::pair<std::string, std::string>>& edges,
                 const std::string& predicate = "e") {
  Database db;
  for (const auto& [from, to] : edges) {
    db.AddFact(predicate, {from, to});
  }
  return db;
}

TEST(EvalTest, TransitiveClosureOnChain) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  Database db = GraphDb({{"a", "b"}, {"b", "c"}, {"c", "d"}});
  StatusOr<Relation> result = EvaluateGoal(tc, "p", db);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 6u);  // ab ac ad bc bd cd
}

TEST(EvalTest, TransitiveClosureOnCycle) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  Database db = GraphDb({{"a", "b"}, {"b", "a"}});
  StatusOr<Relation> result = EvaluateGoal(tc, "p", db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 4u);  // aa ab ba bb
}

TEST(EvalTest, NaiveAndSemiNaiveAgree) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- p(X, Z), p(Z, Y).
  )");
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomDbOptions options;
    options.seed = seed;
    options.domain_size = 5;
    options.tuples_per_relation = 8;
    Database db = RandomDatabaseFor(tc, options);
    EvalOptions naive;
    naive.semi_naive = false;
    EvalOptions semi;
    semi.semi_naive = true;
    StatusOr<Relation> r1 = EvaluateGoal(tc, "p", db, naive);
    StatusOr<Relation> r2 = EvaluateGoal(tc, "p", db, semi);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(*r1, *r2) << "seed " << seed;
  }
}

TEST(EvalTest, SemiNaiveDoesLessWorkOnLongChain) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  Database db;
  for (int i = 0; i < 30; ++i) {
    db.AddFact("e", {StrCat("n", i), StrCat("n", i + 1)});
  }
  EvalStats naive_stats;
  EvalStats semi_stats;
  EvalOptions naive;
  naive.semi_naive = false;
  EvalOptions semi;
  semi.semi_naive = true;
  ASSERT_TRUE(EvaluateGoal(tc, "p", db, naive, &naive_stats).ok());
  ASSERT_TRUE(EvaluateGoal(tc, "p", db, semi, &semi_stats).ok());
  EXPECT_EQ(naive_stats.facts_derived, semi_stats.facts_derived);
  EXPECT_LT(semi_stats.join_probes, naive_stats.join_probes);
}

TEST(EvalTest, MutualRecursionEvenOdd) {
  Program p = MustParseProgram(R"(
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
  )");
  Database db;
  db.AddFact("zero", {"0"});
  for (int i = 0; i < 6; ++i) {
    db.AddFact("succ", {StrCat(i), StrCat(i + 1)});
  }
  StatusOr<Database> result = EvaluateProgram(p, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->GetRelation("even", 1).size(), 4u);  // 0 2 4 6
  EXPECT_EQ(result->GetRelation("odd", 1).size(), 3u);   // 1 3 5
}

TEST(EvalTest, EmptyBodyRuleUsesActiveDomain) {
  // dist0(X, X) :- . derives the diagonal over the active domain.
  Program p = MustParseProgram(R"(
    d(X, X) :- .
    d(X, Y) :- e(X, Y).
  )");
  Database db = GraphDb({{"a", "b"}});
  StatusOr<Relation> result = EvaluateGoal(p, "d", db);
  ASSERT_TRUE(result.ok());
  // diagonal {aa, bb} plus edge ab.
  EXPECT_EQ(result->size(), 3u);
}

TEST(EvalTest, ConstantsInRules) {
  Program p = MustParseProgram(R"(
    reach(X) :- e(root, X).
    reach(X) :- reach(Y), e(Y, X).
  )");
  Database db = GraphDb({{"root", "a"}, {"a", "b"}, {"c", "d"}});
  StatusOr<Relation> result = EvaluateGoal(p, "reach", db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);  // a, b
}

TEST(EvalTest, ProgramConstantAbsentFromDatabase) {
  Program p = MustParseProgram("q(X) :- e(missing, X).");
  Database db = GraphDb({{"a", "b"}});
  StatusOr<Relation> result = EvaluateGoal(p, "q", db);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(EvalTest, GoalWithEmptyDatabase) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  Database empty;
  StatusOr<Relation> result = EvaluateGoal(tc, "p", empty);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(EvalTest, ZeroAryGoal) {
  Program p = MustParseProgram(R"(
    c :- start(Z), e(Z, W).
  )");
  Database db;
  db.AddFact("start", {"s"});
  db.AddFact("e", {"s", "t"});
  StatusOr<Relation> result = EvaluateGoal(p, "c", db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);  // the 0-ary tuple: true

  Database db2;
  db2.AddFact("start", {"s"});
  StatusOr<Relation> result2 = EvaluateGoal(p, "c", db2);
  ASSERT_TRUE(result2.ok());
  EXPECT_TRUE(result2->empty());
}

TEST(EvalTest, FactLimitTriggersResourceExhausted) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- p(X, Z), p(Z, Y).
  )");
  Database db;
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      db.AddFact("e", {StrCat("n", i), StrCat("n", j)});
    }
  }
  EvalOptions options;
  options.limits.max_facts = 10;
  StatusOr<Relation> result = EvaluateGoal(tc, "p", db, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvalUcqTest, UnionEvaluatesAllDisjuncts) {
  UnionOfCqs ucq;
  ucq.Add(MustParseCq("q(X, Y) :- e(X, Y)."));
  ucq.Add(MustParseCq("q(X, Y) :- e(X, Z), e(Z, Y)."));
  Database db = GraphDb({{"a", "b"}, {"b", "c"}});
  StatusOr<Relation> result = EvaluateUcq(ucq, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);  // ab bc ac
}

TEST(EvalUcqTest, MatchesDatalogEvaluationOfNonrecursiveEquivalent) {
  // likes + trendy ∘ likes: nonrecursive buys from Example 1.1.
  UnionOfCqs ucq;
  ucq.Add(MustParseCq("buys(X, Y) :- likes(X, Y)."));
  ucq.Add(MustParseCq("buys(X, Y) :- trendy(X), likes(Z, Y)."));
  Program nonrec = MustParseProgram(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), likes(Z, Y).
  )");
  RandomDbOptions options;
  options.domain_size = 4;
  options.tuples_per_relation = 5;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    options.seed = seed;
    Database db = RandomDatabaseFor(nonrec, options);
    StatusOr<Relation> via_ucq = EvaluateUcq(ucq, db);
    StatusOr<Relation> via_program = EvaluateGoal(nonrec, "buys", db);
    ASSERT_TRUE(via_ucq.ok());
    ASSERT_TRUE(via_program.ok());
    EXPECT_EQ(*via_ucq, *via_program) << "seed " << seed;
  }
}

TEST(CanonicalDbTest, FreezeProducesGroundFacts) {
  ConjunctiveQuery cq = MustParseCq("q(X, Y) :- e(X, Z), e(Z, Y), f(a).");
  CanonicalDatabase frozen = FreezeCq(cq);
  ASSERT_EQ(frozen.facts.size(), 3u);
  for (const Atom& fact : frozen.facts) {
    for (const Term& t : fact.args()) {
      EXPECT_TRUE(t.is_constant());
    }
  }
  EXPECT_EQ(frozen.goal_tuple[0], Term::Constant("@X"));
  EXPECT_EQ(frozen.goal_tuple[1], Term::Constant("@Y"));
  // Pre-existing constants survive freezing unchanged.
  EXPECT_EQ(frozen.facts[2].args()[0], Term::Constant("a"));
}

TEST(CanonicalDbTest, FrozenDatabaseSatisfiesItsOwnQuery) {
  ConjunctiveQuery cq = MustParseCq("q(X, Y) :- e(X, Z), e(Z, Y).");
  CanonicalDatabase frozen = FreezeCq(cq);
  Database db;
  for (const Atom& fact : frozen.facts) {
    ASSERT_TRUE(db.AddFactAtom(fact).ok());
  }
  UnionOfCqs ucq;
  ucq.Add(cq);
  StatusOr<Relation> result = EvaluateUcq(ucq, db);
  ASSERT_TRUE(result.ok());
  Tuple goal;
  for (const Term& t : frozen.goal_tuple) {
    goal.push_back(db.dictionary().Lookup(t.name()));
  }
  EXPECT_TRUE(result->Contains(goal));
}

TEST(RandomDbTest, DeterministicUnderSeed) {
  std::map<std::string, std::size_t> signature{{"e", 2}, {"f", 1}};
  RandomDbOptions options;
  options.seed = 7;
  Database a = RandomDatabase(signature, options);
  Database b = RandomDatabase(signature, options);
  EXPECT_EQ(a.GetRelation("e", 2), b.GetRelation("e", 2));
  options.seed = 8;
  Database c = RandomDatabase(signature, options);
  EXPECT_NE(a.GetRelation("e", 2), c.GetRelation("e", 2));
}

}  // namespace
}  // namespace datalog
