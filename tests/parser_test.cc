#include <gtest/gtest.h>

#include "src/ast/parser.h"

namespace datalog {
namespace {

TEST(ParserTest, SimpleRule) {
  StatusOr<Program> p = ParseProgram("p(X, Y) :- e(X, Z), p(Z, Y).");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->rules().size(), 1u);
  const Rule& r = p->rules()[0];
  EXPECT_EQ(r.head().predicate(), "p");
  ASSERT_EQ(r.body().size(), 2u);
  EXPECT_EQ(r.body()[0].predicate(), "e");
}

TEST(ParserTest, VariablesVsConstants) {
  StatusOr<Atom> a = ParseAtom("p(X, abc, 42, _tmp, \"hello world\")");
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_TRUE(a->args()[0].is_variable());
  EXPECT_TRUE(a->args()[1].is_constant());
  EXPECT_TRUE(a->args()[2].is_constant());
  EXPECT_EQ(a->args()[2].name(), "42");
  EXPECT_TRUE(a->args()[3].is_variable()) << "underscore-led is a variable";
  EXPECT_TRUE(a->args()[4].is_constant());
  EXPECT_EQ(a->args()[4].name(), "hello world");
}

TEST(ParserTest, ZeroAryAtomWithAndWithoutParens) {
  StatusOr<Program> p = ParseProgram(R"(
    c :- start(Z), bit(Z).
    d() :- c.
  )");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->rules()[0].head().arity(), 0u);
  EXPECT_EQ(p->rules()[1].body()[0].arity(), 0u);
}

TEST(ParserTest, FactAndExplicitEmptyBody) {
  StatusOr<Program> p = ParseProgram(R"(
    e(a, b).
    dist0(X, X) :- .
  )");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_TRUE(p->rules()[0].body().empty());
  EXPECT_TRUE(p->rules()[1].body().empty());
}

TEST(ParserTest, Comments) {
  StatusOr<Program> p = ParseProgram(R"(
    % transitive closure
    p(X, Y) :- e(X, Y).   // base case
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->rules().size(), 2u);
}

TEST(ParserTest, RoundTripThroughToString) {
  const std::string text =
      "buys(X, Y) :- likes(X, Y).\n"
      "buys(X, Y) :- trendy(X), buys(Z, Y).";
  StatusOr<Program> p = ParseProgram(text);
  ASSERT_TRUE(p.ok());
  StatusOr<Program> reparsed = ParseProgram(p->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*p, *reparsed);
}

TEST(ParserTest, ErrorMissingPeriod) {
  StatusOr<Program> p = ParseProgram("p(X) :- e(X)");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("expected '.'"), std::string::npos)
      << p.status();
}

TEST(ParserTest, ErrorUppercasePredicate) {
  StatusOr<Program> p = ParseProgram("P(X) :- e(X).");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("expected predicate name"),
            std::string::npos);
}

TEST(ParserTest, ErrorUnbalancedParen) {
  EXPECT_FALSE(ParseProgram("p(X :- e(X).").ok());
}

TEST(ParserTest, ErrorBadColon) {
  EXPECT_FALSE(ParseProgram("p(X) : e(X).").ok());
}

TEST(ParserTest, ErrorUnterminatedString) {
  EXPECT_FALSE(ParseProgram("p(\"abc) :- e(X).").ok());
}

TEST(ParserTest, ErrorEmptyProgram) {
  EXPECT_FALSE(ParseProgram("  % only a comment\n").ok());
}

TEST(ParserTest, ErrorReportsLineAndColumn) {
  StatusOr<Program> p = ParseProgram("p(X) :- e(X).\nq(Y) :- &.");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("2:"), std::string::npos) << p.status();
}

TEST(ParserTest, ErrorTrailingGarbageAfterAtom) {
  EXPECT_FALSE(ParseAtom("p(X) extra").ok());
  EXPECT_FALSE(ParseRule("p(X) :- e(X). q(Y).").ok());
}

TEST(ParserTest, ArityMismatchRejectedByLint) {
  // The parser's default lint (src/analysis/diagnostics.h) rejects
  // arity-inconsistent programs with the offending diagnostic inline.
  StatusOr<Program> p = ParseProgram(R"(
    p(X) :- e(X, X).
    q(X) :- e(X).
  )");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("arity-mismatch"), std::string::npos);
}

TEST(ParserTest, PaperExample11Programs) {
  // Both programs from Example 1.1 parse.
  StatusOr<Program> p1 = ParseProgram(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), buys(Z, Y).
  )");
  ASSERT_TRUE(p1.ok());
  StatusOr<Program> p2 = ParseProgram(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- knows(X, Z), buys(Z, Y).
  )");
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->rules().size(), 2u);
  EXPECT_EQ(p2->rules().size(), 2u);
}

}  // namespace
}  // namespace datalog
