#include <gtest/gtest.h>

#include <set>

#include "src/containment/instances.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

TEST(CanonicalizeAtomTest, RenamesInFirstOccurrenceOrder) {
  CanonicalAtomInfo info = CanonicalizeAtom(MustParseAtom("p(B, A, B, k)"));
  EXPECT_EQ(info.atom.ToString(), "p($0, $1, $0, k)");
  EXPECT_EQ(info.original_vars, (std::vector<std::string>{"B", "A"}));
}

TEST(CanonicalizeAtomTest, GroundAtomUnchanged) {
  CanonicalAtomInfo info = CanonicalizeAtom(MustParseAtom("p(a, b)"));
  EXPECT_EQ(info.atom, MustParseAtom("p(a, b)"));
  EXPECT_TRUE(info.original_vars.empty());
}

TEST(CanonicalInstanceTest, CountsAreBellNumbers) {
  // One canonical instance per set partition of the rule's variables:
  // Bell(1)=1, Bell(2)=2, Bell(3)=5, Bell(4)=15.
  const std::vector<std::pair<std::string, std::size_t>> cases = {
      {"p(X) :- e(X).", 1},
      {"p(X, Y) :- e(X, Y).", 2},
      {"p(X, Y) :- e(X, Z), p(Z, Y).", 5},
      {"p(X, Y) :- e(X, Z), e(Z, W), p(W, Y).", 15},
  };
  for (const auto& [text, expected] : cases) {
    Rule rule = MustParseRule(text);
    std::set<std::string> seen;
    ForEachCanonicalInstance(rule, 16, [&](const Rule& instance) {
      EXPECT_TRUE(seen.insert(instance.ToString()).second)
          << "duplicate instance " << instance.ToString();
      EXPECT_TRUE(IsRuleInstance(rule, instance)) << instance.ToString();
      return true;
    });
    EXPECT_EQ(seen.size(), expected) << text;
  }
}

TEST(CanonicalInstanceTest, ProofVariableBudgetCapsClasses) {
  // With only 2 proof variables, partitions needing 3+ classes are
  // skipped: partitions of {X,Y,Z} into <=2 classes: S(3,1)+S(3,2) = 4.
  Rule rule = MustParseRule("p(X, Y) :- e(X, Z), p(Z, Y).");
  std::size_t count = 0;
  ForEachCanonicalInstance(rule, 2, [&](const Rule&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 4u);
}

TEST(CanonicalInstanceTest, EarlyStopPropagates) {
  Rule rule = MustParseRule("p(X, Y) :- e(X, Z), p(Z, Y).");
  std::size_t count = 0;
  bool completed = ForEachCanonicalInstance(rule, 16, [&](const Rule&) {
    return ++count < 2;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 2u);
}

TEST(FullInstanceTest, EnumeratesAllSubstitutions) {
  Rule rule = MustParseRule("p(X, Y) :- e(X, Y).");
  std::set<std::string> seen;
  ForEachInstanceOver(rule, {"$0", "$1", "$2"}, [&](const Rule& instance) {
    seen.insert(instance.ToString());
    return true;
  });
  EXPECT_EQ(seen.size(), 9u);  // 3^2
}

TEST(ExtendToPermutationTest, ProducesABijectionExtendingTheMap) {
  std::vector<std::string> proof_vars = {"$0", "$1", "$2", "$3"};
  Substitution permutation =
      ExtendToPermutation({"$0", "$1"}, {"$2", "$0"}, proof_vars);
  EXPECT_EQ(permutation.at("$0"), Term::Variable("$2"));
  EXPECT_EQ(permutation.at("$1"), Term::Variable("$0"));
  // Bijection over proof_vars.
  std::set<std::string> targets;
  for (const std::string& v : proof_vars) {
    ASSERT_TRUE(permutation.count(v) > 0) << v;
    EXPECT_TRUE(targets.insert(permutation.at(v).name()).second);
  }
  EXPECT_EQ(targets.size(), proof_vars.size());
}

TEST(RenameTreeTest, RenamesEveryLabel) {
  ExpansionNode leaf;
  Substitution to_proof;
  to_proof.emplace("X", Term::Variable("$0"));
  to_proof.emplace("Y", Term::Variable("$1"));
  leaf.rule =
      ApplySubstitution(to_proof, MustParseRule("p(X, Y) :- e0(X, Y)."));
  leaf.goal = leaf.rule.head();
  ExpansionTree tree{(ExpansionNode(leaf))};
  Substitution swap;
  swap.emplace("$0", Term::Variable("$1"));
  swap.emplace("$1", Term::Variable("$0"));
  ExpansionTree renamed = RenameTree(tree, swap);
  EXPECT_EQ(renamed.root().rule.ToString(), "p($1, $0) :- e0($1, $0).");
  EXPECT_EQ(renamed.root().goal, renamed.root().rule.head());
}

}  // namespace
}  // namespace datalog
