// Tests for the unified resource governor (src/util/governor.h): unit
// coverage for CancelToken / FaultInjector / ExecutionLimits / Governor,
// the new status codes, and the poll-point sweep harness — every
// governed procedure is run once with a counting injector to learn its
// poll count P, then re-run P times with a cancel fault fired at each
// poll in turn, asserting a clean kCancelled Status every time and a
// baseline-identical result on a fresh post-fault re-run.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "src/containment/decider.h"
#include "src/containment/linear.h"
#include "src/containment/theta_automaton.h"
#include "src/engine/database.h"
#include "src/engine/eval.h"
#include "src/util/governor.h"
#include "src/util/status.h"
#include "src/util/strings.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

// --- status codes ------------------------------------------------------

TEST(GovernorStatusTest, NewCodesNameAndPrint) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "CANCELLED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  Status cancelled = CancelledError("stopped early");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "CANCELLED: stopped early");
  Status late = DeadlineExceededError("too slow");
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.ToString(), "DEADLINE_EXCEEDED: too slow");
}

// --- token / injector / limits unit coverage ---------------------------

TEST(CancelTokenTest, CancelAndReset) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(FaultInjectorTest, FiresExactlyOnceAtTheNthPoll) {
  FaultInjector injector(FaultInjector::Fault::kCancel, 3);
  EXPECT_EQ(injector.OnPoll(), FaultInjector::Fault::kNone);
  EXPECT_EQ(injector.OnPoll(), FaultInjector::Fault::kNone);
  EXPECT_EQ(injector.OnPoll(), FaultInjector::Fault::kCancel);
  EXPECT_EQ(injector.OnPoll(), FaultInjector::Fault::kNone);
  EXPECT_EQ(injector.polls(), 4u);
  injector.Reset(FaultInjector::Fault::kExhaust, 1);
  EXPECT_EQ(injector.polls(), 0u);
  EXPECT_EQ(injector.OnPoll(), FaultInjector::Fault::kExhaust);
}

TEST(ExecutionLimitsTest, CapResolversDefaultOnZero) {
  ExecutionLimits limits;
  EXPECT_EQ(limits.FactsOr(7), 7u);
  EXPECT_EQ(limits.StatesOr(9), 9u);
  limits = limits.WithMaxFacts(3).WithMaxStates(4).WithMaxLabels(5)
               .WithMaxTransitions(6).WithMaxExplored(8);
  EXPECT_EQ(limits.FactsOr(7), 3u);
  EXPECT_EQ(limits.StatesOr(9), 4u);
  EXPECT_EQ(limits.LabelsOr(9), 5u);
  EXPECT_EQ(limits.TransitionsOr(9), 6u);
  EXPECT_EQ(limits.ExploredOr(9), 8u);
}

TEST(GovernorTest, PollObservesCancelDeadlineAndFaults) {
  ExecutionLimits free_limits;
  Governor free_governor(free_limits, "test");
  EXPECT_TRUE(free_governor.Poll().ok());

  CancelToken token;
  token.Cancel();
  ExecutionLimits cancel_limits = ExecutionLimits().WithCancel(&token);
  Governor cancelled(cancel_limits, "test");
  EXPECT_EQ(cancelled.Poll().code(), StatusCode::kCancelled);

  ExecutionLimits late_limits = ExecutionLimits().WithDeadline(
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  Governor late(late_limits, "test");
  EXPECT_EQ(late.Poll().code(), StatusCode::kDeadlineExceeded);

  // An injected cancel fault also trips the shared token.
  FaultInjector injector(FaultInjector::Fault::kCancel, 1);
  CancelToken shared;
  ExecutionLimits fault_limits =
      ExecutionLimits().WithFault(&injector).WithCancel(&shared);
  Governor faulted(fault_limits, "test");
  EXPECT_EQ(faulted.Poll().code(), StatusCode::kCancelled);
  EXPECT_TRUE(shared.cancelled());
}

TEST(GovernorTest, ChargeStepsEnforcesTheBudget) {
  ExecutionLimits limits = ExecutionLimits().WithMaxSteps(10);
  Governor governor(limits, "budgeted procedure");
  EXPECT_TRUE(governor.ChargeSteps(10).ok());
  Status over = governor.ChargeSteps(1);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(over.message().find("budgeted procedure"), std::string::npos);
  EXPECT_EQ(governor.steps(), 11u);
}

TEST(FaultInjectorTest, ReaderFaultsMutateTheImage) {
  FaultInjector injector;
  std::string bytes = "abcdef";
  injector.ApplyReaderFaults(&bytes);
  EXPECT_EQ(bytes, "abcdef");  // unconfigured: no-op
  injector.TruncateReadsTo(4);
  injector.ApplyReaderFaults(&bytes);
  EXPECT_EQ(bytes, "abcd");
  FaultInjector flipper;
  flipper.FlipByteAt(0);
  std::string flipped = "abcd";
  flipper.ApplyReaderFaults(&flipped);
  EXPECT_EQ(flipped[0], static_cast<char>(~'a'));
  EXPECT_EQ(flipped.substr(1), "bcd");
}

// --- the poll-point sweep harness --------------------------------------

// Runs `workload` once with a counting injector to learn its poll count,
// then fires a cancel fault at every poll in [1, P] and requires a clean
// kCancelled Status each time; finally re-runs unfaulted and requires
// the baseline fingerprint, byte for byte.
void SweepPollPoints(
    const std::function<StatusOr<std::string>(const ExecutionLimits&)>&
        workload) {
  FaultInjector counter;
  ExecutionLimits counting = ExecutionLimits().WithFault(&counter);
  StatusOr<std::string> baseline = workload(counting);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const std::uint64_t polls = counter.polls();
  ASSERT_GT(polls, 0u) << "workload never polled its governor";

  FaultInjector injector;
  CancelToken token;
  for (std::uint64_t n = 1; n <= polls; ++n) {
    injector.Reset(FaultInjector::Fault::kCancel, n);
    token.Reset();
    ExecutionLimits faulted =
        ExecutionLimits().WithFault(&injector).WithCancel(&token);
    StatusOr<std::string> result = workload(faulted);
    ASSERT_FALSE(result.ok())
        << "fault at poll " << n << " of " << polls << " was swallowed";
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
        << "poll " << n << ": " << result.status();
    EXPECT_TRUE(token.cancelled()) << "poll " << n;
  }

  StatusOr<std::string> rerun = workload(ExecutionLimits());
  ASSERT_TRUE(rerun.ok()) << rerun.status();
  EXPECT_EQ(*rerun, *baseline);
}

Database ChainDb(int length) {
  Database db;
  for (int i = 0; i < length; ++i) {
    db.AddFact("e", {StrCat("n", i), StrCat("n", i + 1)});
  }
  return db;
}

std::string RelationFingerprint(const Relation& relation) {
  std::string out;
  for (const Tuple& tuple : relation.SortedTuples()) {
    for (int value : tuple) out += StrCat(value, ",");
    out += ";";
  }
  return out;
}

TEST(GovernorSweepTest, SerialEngineFixpoint) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  Database db = ChainDb(6);
  SweepPollPoints([&](const ExecutionLimits& limits) -> StatusOr<std::string> {
    EvalOptions options;
    options.limits = limits;
    StatusOr<Relation> result = EvaluateGoal(tc, "p", db, options);
    if (!result.ok()) return result.status();
    return RelationFingerprint(*result);
  });
}

TEST(GovernorSweepTest, PtreesDecider) {
  // Recursive and contained: the decider runs its absorption fixpoint to
  // convergence, polling per round, per instance, and per combine tick.
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- p(Y, X).
  )");
  UnionOfCqs theta;
  theta.Add(MustParseCq("q(X, Y) :- e(X, Y)."));
  theta.Add(MustParseCq("q(X, Y) :- e(Y, X)."));
  SweepPollPoints([&](const ExecutionLimits& limits) -> StatusOr<std::string> {
    ContainmentOptions options;
    options.limits = limits;
    StatusOr<ContainmentDecision> decision =
        DecideDatalogInUcq(program, "p", theta, options);
    if (!decision.ok()) return decision.status();
    return std::string(decision->contained ? "contained" : "refuted");
  });
}

TEST(GovernorSweepTest, LinearWordAutomatonArm) {
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  UnionOfCqs theta;
  theta.Add(MustParseCq("q(X, Y) :- e(X, Y)."));
  theta.Add(MustParseCq("q(X, Y) :- e(X, Z), e(Z, Y)."));
  SweepPollPoints([&](const ExecutionLimits& limits) -> StatusOr<std::string> {
    LinearContainmentOptions options;
    options.limits = limits;
    StatusOr<LinearContainmentResult> result =
        DecideLinearDatalogInUcq(program, "p", theta, options);
    if (!result.ok()) return result.status();
    return std::string(result->contained ? "contained" : "refuted");
  });
}

TEST(GovernorSweepTest, ExplicitAutomataPipeline) {
  // Covers the alphabet enumeration, ptrees construction, theta
  // construction, and NFTA containment poll sites in one workload.
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- p(Y, X).
  )");
  UnionOfCqs theta;
  theta.Add(MustParseCq("q(X, Y) :- e(X, Y)."));
  theta.Add(MustParseCq("q(X, Y) :- e(Y, X)."));
  SweepPollPoints([&](const ExecutionLimits& limits) -> StatusOr<std::string> {
    StatusOr<ExplicitContainmentResult> result =
        DecideContainmentViaExplicitAutomata(program, "p", theta, limits);
    if (!result.ok()) return result.status();
    return std::string(result->contained ? "contained" : "refuted");
  });
}

// --- deadlines and budgets through real procedures ---------------------

TEST(GovernorIntegrationTest, ExpiredDeadlineStopsTheEngine) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  Database db = ChainDb(6);
  EvalOptions options;
  options.limits = ExecutionLimits().WithDeadline(
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  EvalStats stats;
  StatusOr<Relation> result = EvaluateGoal(tc, "p", db, options, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(GovernorIntegrationTest, StepBudgetStopsTheEngine) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  // The engine charges the budget in 1024-emission chunks, so the
  // workload must emit more than one chunk: a 64-chain's transitive
  // closure derives 64*65/2 = 2080 facts.
  Database db = ChainDb(64);
  EvalOptions options;
  options.limits = ExecutionLimits().WithMaxSteps(5);
  StatusOr<Relation> result = EvaluateGoal(tc, "p", db, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(GovernorIntegrationTest, DeciderReportsPartialStatsOnCancellation) {
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- p(Y, X).
  )");
  UnionOfCqs theta;
  theta.Add(MustParseCq("q(X, Y) :- e(X, Y)."));
  theta.Add(MustParseCq("q(X, Y) :- e(Y, X)."));

  ContainmentStats full_stats;
  ContainmentOptions options;
  options.partial_stats = &full_stats;
  StatusOr<ContainmentDecision> clean =
      DecideDatalogInUcq(program, "p", theta, options);
  ASSERT_TRUE(clean.ok()) << clean.status();

  // Cancel partway: the partial stats must be consistent (no torn
  // counters — bounded by the clean run's totals).
  FaultInjector injector(FaultInjector::Fault::kCancel, 2);
  ContainmentStats partial_stats;
  ContainmentOptions faulted;
  faulted.partial_stats = &partial_stats;
  faulted.limits = ExecutionLimits().WithFault(&injector);
  StatusOr<ContainmentDecision> cancelled =
      DecideDatalogInUcq(program, "p", theta, faulted);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_LE(partial_stats.goals_discovered, full_stats.goals_discovered);
  EXPECT_LE(partial_stats.states_discovered, full_stats.states_discovered);
  EXPECT_LE(partial_stats.combine_calls, full_stats.combine_calls);
}

// --- parallel cancellation ---------------------------------------------

TEST(GovernorParallelTest, CancelsCleanlyAtEveryPollPoint) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  Database db = ChainDb(10);
  StatusOr<Relation> serial = EvaluateGoal(tc, "p", db);
  ASSERT_TRUE(serial.ok()) << serial.status();

  for (int threads : {2, 4}) {
    SCOPED_TRACE(StrCat("threads=", threads));
    EvalOptions parallel;
    parallel.num_threads = threads;

    FaultInjector counter;
    EvalOptions counting = parallel;
    counting.limits = ExecutionLimits().WithFault(&counter);
    EvalStats clean_stats;
    StatusOr<Relation> clean =
        EvaluateGoal(tc, "p", db, counting, &clean_stats);
    ASSERT_TRUE(clean.ok()) << clean.status();
    EXPECT_EQ(*clean, *serial);
    const std::uint64_t polls = counter.polls();
    ASSERT_GT(polls, 0u);

    FaultInjector injector;
    CancelToken token;
    for (std::uint64_t n = 1; n <= polls; ++n) {
      injector.Reset(FaultInjector::Fault::kCancel, n);
      token.Reset();
      EvalOptions faulted = parallel;
      faulted.limits =
          ExecutionLimits().WithFault(&injector).WithCancel(&token);
      EvalStats stats;
      StatusOr<Relation> result =
          EvaluateGoal(tc, "p", db, faulted, &stats);
      ASSERT_FALSE(result.ok()) << "poll " << n << " of " << polls;
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
          << "poll " << n << ": " << result.status();
      EXPECT_TRUE(token.cancelled()) << "poll " << n;
      // Consistent partial stats: never more work than a full clean run.
      EXPECT_LE(stats.facts_derived, clean_stats.facts_derived)
          << "poll " << n;
    }

    // A fresh post-fault run matches the serial result row for row.
    StatusOr<Relation> rerun = EvaluateGoal(tc, "p", db, parallel);
    ASSERT_TRUE(rerun.ok()) << rerun.status();
    EXPECT_EQ(RelationFingerprint(*rerun), RelationFingerprint(*serial));
  }
}

}  // namespace
}  // namespace datalog
