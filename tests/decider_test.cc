#include <gtest/gtest.h>

#include "src/containment/decider.h"
#include "src/cq/containment.h"
#include "src/engine/eval.h"
#include "src/engine/random_db.h"
#include "src/trees/connectivity.h"
#include "src/trees/enumerate.h"
#include "src/trees/strong_mapping.h"
#include "src/util/strings.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

ContainmentDecision MustDecide(const Program& program, const std::string& goal,
                               const UnionOfCqs& theta,
                               const ContainmentOptions& options =
                                   ContainmentOptions()) {
  StatusOr<ContainmentDecision> decision =
      DecideDatalogInUcq(program, goal, theta, options);
  EXPECT_TRUE(decision.ok()) << decision.status();
  return *decision;
}

// Verifies a claimed counterexample: it must be a valid proof tree of the
// program into which no disjunct maps strongly, and its expansion CQ must
// not be contained in the union.
void CheckCounterexample(const Program& program, const UnionOfCqs& theta,
                         const ContainmentDecision& decision) {
  ASSERT_FALSE(decision.contained);
  ASSERT_TRUE(decision.counterexample.has_value());
  const ExpansionTree& tree = *decision.counterexample;
  EXPECT_TRUE(ValidateProofTree(program, tree).ok())
      << ValidateProofTree(program, tree) << "\n"
      << tree.ToString();
  EXPECT_FALSE(AnyDisjunctMapsStrongly(program, tree, theta))
      << tree.ToString();
  // Double-check semantically: the renamed expansion CQ must escape Θ.
  ExpansionTree renamed = TreeConnectivity(tree).RenameByClass();
  ConjunctiveQuery expansion = TreeToCq(program, renamed);
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    EXPECT_FALSE(FindContainmentMapping(disjunct, expansion).has_value())
        << "disjunct " << disjunct.ToString() << " covers the expansion "
        << expansion.ToString();
  }
}

// --- Paper Example 1.1 -----------------------------------------------

Program Buys1() {
  return MustParseProgram(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), buys(Z, Y).
  )");
}

Program Buys2() {
  return MustParseProgram(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- knows(X, Z), buys(Z, Y).
  )");
}

UnionOfCqs Buys1Nonrecursive() {
  UnionOfCqs theta;
  theta.Add(MustParseCq("buys(X, Y) :- likes(X, Y)."));
  theta.Add(MustParseCq("buys(X, Y) :- trendy(X), likes(Z, Y)."));
  return theta;
}

UnionOfCqs Buys2NonrecursiveAttempt() {
  UnionOfCqs theta;
  theta.Add(MustParseCq("buys(X, Y) :- likes(X, Y)."));
  theta.Add(MustParseCq("buys(X, Y) :- knows(X, Z), likes(Z, Y)."));
  return theta;
}

TEST(DeciderTest, PaperExample11Buys1IsContained) {
  // The paper's headline positive example: buys1 IS equivalent to its
  // nonrecursive rewriting, so in particular it is contained in it.
  ContainmentDecision decision =
      MustDecide(Buys1(), "buys", Buys1Nonrecursive());
  EXPECT_TRUE(decision.contained);
}

TEST(DeciderTest, PaperExample11Buys2IsNotContained) {
  // The paper's headline negative example: buys2 is NOT contained in the
  // analogous rewriting (it is inherently recursive).
  ContainmentDecision decision =
      MustDecide(Buys2(), "buys", Buys2NonrecursiveAttempt());
  CheckCounterexample(Buys2(), Buys2NonrecursiveAttempt(), decision);
  // The shortest escape needs two knows-steps: a depth-3 proof tree.
  EXPECT_EQ(decision.counterexample->Depth(), 3u);
}

TEST(DeciderTest, TransitiveClosureNotContainedInBoundedPaths) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  UnionOfCqs paths;
  paths.Add(MustParseCq("p(X, Y) :- e(X, Y)."));
  paths.Add(MustParseCq("p(X, Y) :- e(X, A), e(A, Y)."));
  paths.Add(MustParseCq("p(X, Y) :- e(X, A), e(A, B), e(B, Y)."));
  ContainmentDecision decision = MustDecide(tc, "p", paths);
  CheckCounterexample(tc, paths, decision);
  EXPECT_EQ(decision.counterexample->Depth(), 4u)
      << "shortest escape is the length-4 path";
}

TEST(DeciderTest, EverythingIsContainedInTop) {
  // Top = empty-body CQ with distinct head variables.
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  UnionOfCqs top;
  top.Add(MustParseCq("p(X, Y) :- ."));
  EXPECT_TRUE(MustDecide(tc, "p", top).contained);
}

TEST(DeciderTest, DiagonalTopDoesNotCoverDistinctHeads) {
  // (X, X) :- true only covers proof trees with equal head arguments.
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  UnionOfCqs diagonal;
  diagonal.Add(MustParseCq("p(X, X) :- ."));
  ContainmentDecision decision = MustDecide(tc, "p", diagonal);
  CheckCounterexample(tc, diagonal, decision);
}

TEST(DeciderTest, EmptyUnionContainsNothingDerivable) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  UnionOfCqs empty;
  ContainmentDecision decision = MustDecide(tc, "p", empty);
  EXPECT_FALSE(decision.contained);

  // A program whose goal can never fire (no base case) IS contained in the
  // empty union.
  Program no_base = MustParseProgram(R"(
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  EXPECT_TRUE(MustDecide(no_base, "p", empty).contained);
}

TEST(DeciderTest, NonlinearProgramContainment) {
  // Nonlinear transitive closure: same language as linear TC.
  Program nl = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- p(X, Z), p(Z, Y).
  )");
  UnionOfCqs top;
  top.Add(MustParseCq("p(X, Y) :- ."));
  EXPECT_TRUE(MustDecide(nl, "p", top).contained);

  UnionOfCqs short_paths;
  short_paths.Add(MustParseCq("p(X, Y) :- e(X, Y)."));
  short_paths.Add(MustParseCq("p(X, Y) :- e(X, A), e(A, Y)."));
  ContainmentDecision decision = MustDecide(nl, "p", short_paths);
  CheckCounterexample(nl, short_paths, decision);
}

TEST(DeciderTest, ContainmentSensitiveToEdbPredicateNames) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  UnionOfCqs wrong_edb;
  wrong_edb.Add(MustParseCq("p(X, Y) :- f(X, Y)."));
  ContainmentDecision decision = MustDecide(tc, "p", wrong_edb);
  EXPECT_FALSE(decision.contained);
}

TEST(DeciderTest, MutualRecursionContained) {
  Program p = MustParseProgram(R"(
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
  )");
  // odd numbers are at least 1 step from zero.
  UnionOfCqs at_least_one_step;
  at_least_one_step.Add(MustParseCq("odd(X) :- succ(Y, X)."));
  EXPECT_TRUE(MustDecide(p, "odd", at_least_one_step).contained);
  // But they are not all exactly one step from zero.
  UnionOfCqs exactly_one;
  exactly_one.Add(MustParseCq("odd(X) :- succ(Y, X), zero(Y)."));
  ContainmentDecision decision = MustDecide(p, "odd", exactly_one);
  CheckCounterexample(p, exactly_one, decision);
}

TEST(DeciderTest, ConstantsInProgramAndQuery) {
  Program reach = MustParseProgram(R"(
    r(X) :- e(root, X).
    r(X) :- r(Y), e(Y, X).
  )");
  // Everything reachable has an incoming edge.
  UnionOfCqs incoming;
  incoming.Add(MustParseCq("r(X) :- e(Y, X)."));
  EXPECT_TRUE(MustDecide(reach, "r", incoming).contained);
  // Not everything reachable has an incoming edge FROM root.
  UnionOfCqs from_root;
  from_root.Add(MustParseCq("r(X) :- e(root, X)."));
  ContainmentDecision decision = MustDecide(reach, "r", from_root);
  CheckCounterexample(reach, from_root, decision);
}

TEST(DeciderTest, RepeatedVariablesInRuleHead) {
  Program loops = MustParseProgram(R"(
    l(X, X) :- e(X, X).
    l(X, Y) :- e(X, Z), l(Z, Y).
  )");
  // Every l-fact ends at a self-loop.
  UnionOfCqs ends_in_loop;
  ends_in_loop.Add(MustParseCq("l(X, Y) :- e(Y, Y)."));
  EXPECT_TRUE(MustDecide(loops, "l", ends_in_loop).contained);
}

TEST(DeciderTest, AntichainAndExactAgree) {
  struct Case {
    Program program;
    std::string goal;
    UnionOfCqs theta;
  };
  std::vector<Case> cases;
  cases.push_back({Buys1(), "buys", Buys1Nonrecursive()});
  cases.push_back({Buys2(), "buys", Buys2NonrecursiveAttempt()});
  {
    Program tc = MustParseProgram(R"(
      p(X, Y) :- e(X, Y).
      p(X, Y) :- e(X, Z), p(Z, Y).
    )");
    UnionOfCqs paths;
    paths.Add(MustParseCq("p(X, Y) :- e(X, Y)."));
    paths.Add(MustParseCq("p(X, Y) :- e(X, A), e(A, Y)."));
    cases.push_back({tc, "p", paths});
    UnionOfCqs top;
    top.Add(MustParseCq("p(X, Y) :- ."));
    cases.push_back({tc, "p", top});
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    ContainmentOptions with;
    with.antichain = true;
    ContainmentOptions without;
    without.antichain = false;
    ContainmentDecision r1 =
        MustDecide(cases[i].program, cases[i].goal, cases[i].theta, with);
    ContainmentDecision r2 =
        MustDecide(cases[i].program, cases[i].goal, cases[i].theta, without);
    EXPECT_EQ(r1.contained, r2.contained) << "case " << i;
    EXPECT_LE(r1.stats.states_discovered, r2.stats.states_discovered)
        << "case " << i;
  }
}

// Containment claims are semi-verified against bounded proof-tree
// enumeration: if the decider says "contained", every enumerable proof
// tree must admit a strong mapping; if it says "not contained", the
// counterexample is checked exactly (CheckCounterexample).
TEST(DeciderTest, ContainedVerdictsAgreeWithBoundedEnumeration) {
  Program buys1 = Buys1();
  UnionOfCqs theta = Buys1Nonrecursive();
  ASSERT_TRUE(MustDecide(buys1, "buys", theta).contained);
  EnumerateOptions options;
  options.max_depth = 3;
  options.max_trees = 3000;
  std::size_t checked = 0;
  EnumerateProofTrees(buys1, "buys", options, [&](const ExpansionTree& tree) {
    EXPECT_TRUE(AnyDisjunctMapsStrongly(buys1, tree, theta))
        << tree.ToString();
    ++checked;
    return true;
  });
  EXPECT_GT(checked, 50u);
}

// Random-database differential check of a "contained" verdict: evaluating
// the program and the union on random databases must respect inclusion.
TEST(DeciderTest, ContainedVerdictsAgreeWithRandomDatabases) {
  Program buys1 = Buys1();
  UnionOfCqs theta = Buys1Nonrecursive();
  ASSERT_TRUE(MustDecide(buys1, "buys", theta).contained);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomDbOptions options;
    options.seed = seed;
    options.domain_size = 4;
    options.tuples_per_relation = 5;
    Database db = RandomDatabaseFor(buys1, options);
    StatusOr<Relation> program_result = EvaluateGoal(buys1, "buys", db);
    StatusOr<Relation> theta_result = EvaluateUcq(theta, db);
    ASSERT_TRUE(program_result.ok());
    ASSERT_TRUE(theta_result.ok());
    for (const Tuple& tuple : program_result->tuples()) {
      EXPECT_TRUE(theta_result->Contains(tuple)) << "seed " << seed;
    }
  }
}

TEST(DeciderTest, NotContainedVerdictWitnessedOnConcreteDatabase) {
  // Freeze the counterexample's expansion into a database and evaluate:
  // the program must derive the goal tuple while the union must not.
  Program buys2 = Buys2();
  UnionOfCqs theta = Buys2NonrecursiveAttempt();
  ContainmentDecision decision = MustDecide(buys2, "buys", theta);
  ASSERT_FALSE(decision.contained);
  ExpansionTree renamed =
      TreeConnectivity(*decision.counterexample).RenameByClass();
  ConjunctiveQuery expansion = TreeToCq(buys2, renamed);
  // Freeze into a database.
  Database db;
  Substitution freeze;
  for (const std::string& v : expansion.VariableNames()) {
    freeze.emplace(v, Term::Constant(StrCat("k_", v.substr(1))));
  }
  for (const Atom& atom : expansion.body()) {
    ASSERT_TRUE(db.AddFactAtom(ApplySubstitution(freeze, atom)).ok());
  }
  Tuple goal_tuple;
  for (const Term& t : expansion.head_args()) {
    goal_tuple.push_back(
        db.dictionary().Intern(ApplySubstitution(freeze, t).name()));
  }
  StatusOr<Relation> program_result = EvaluateGoal(buys2, "buys", db);
  ASSERT_TRUE(program_result.ok());
  EXPECT_TRUE(program_result->Contains(goal_tuple));
  StatusOr<Relation> theta_result = EvaluateUcq(theta, db);
  ASSERT_TRUE(theta_result.ok());
  EXPECT_FALSE(theta_result->Contains(goal_tuple));
}

TEST(DeciderTest, GoalMustBeIdb) {
  Program tc = MustParseProgram("p(X, Y) :- e(X, Y).");
  UnionOfCqs top;
  top.Add(MustParseCq("q(X, Y) :- ."));
  StatusOr<ContainmentDecision> decision =
      DecideDatalogInUcq(tc, "e", top);
  EXPECT_FALSE(decision.ok());
  EXPECT_EQ(decision.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeciderTest, StateLimitReported) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  UnionOfCqs top;
  top.Add(MustParseCq("p(X, Y) :- ."));
  ContainmentOptions options;
  options.limits.max_states = 1;
  StatusOr<ContainmentDecision> decision =
      DecideDatalogInUcq(tc, "p", top, options);
  ASSERT_FALSE(decision.ok());
  EXPECT_EQ(decision.status().code(), StatusCode::kResourceExhausted);
}

TEST(DeciderTest, SingleCqWrapper) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  StatusOr<ContainmentDecision> decision =
      DecideDatalogInCq(tc, "p", MustParseCq("p(X, Y) :- ."));
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->contained);
}

}  // namespace
}  // namespace datalog
