#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <string>
#include <vector>

#include "src/util/flat_table.h"
#include "src/util/iteration.h"
#include "src/util/scc.h"
#include "src/util/status.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"
#include "src/util/union_find.h"

namespace datalog {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, AllConstructorsSetDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StringsTest, StrJoinBasic) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(StrJoin(parts, ", "), "a, b, c");
  EXPECT_EQ(StrJoin(std::vector<std::string>{}, ", "), "");
  EXPECT_EQ(StrJoin(std::vector<std::string>{"solo"}, ", "), "solo");
}

TEST(StringsTest, StrJoinWithFormatter) {
  std::vector<int> parts = {1, 2, 3};
  std::string joined = StrJoin(
      parts, "-", [](std::ostream& os, int x) { os << (x * 10); });
  EXPECT_EQ(joined, "10-20-30");
}

TEST(StringsTest, StrSplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("x", 1, "-", 2.5), "x1-2.5");
}

TEST(UnionFindTest, BasicUnions) {
  UnionFind uf(5);
  EXPECT_FALSE(uf.Connected(0, 1));
  uf.Union(0, 1);
  EXPECT_TRUE(uf.Connected(0, 1));
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
}

TEST(UnionFindTest, AddGrowsStructure) {
  UnionFind uf(1);
  std::size_t a = uf.Add();
  std::size_t b = uf.Add();
  EXPECT_EQ(uf.size(), 3u);
  uf.Union(a, b);
  EXPECT_TRUE(uf.Connected(a, b));
  EXPECT_FALSE(uf.Connected(0, a));
}

TEST(SccTest, SingleCycle) {
  // 0 -> 1 -> 2 -> 0
  SccResult r = StronglyConnectedComponents(3, {{1}, {2}, {0}});
  EXPECT_EQ(r.num_components, 1);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[1], r.component[2]);
}

TEST(SccTest, Dag) {
  // 0 -> 1 -> 2, 0 -> 2
  SccResult r = StronglyConnectedComponents(3, {{1, 2}, {2}, {}});
  EXPECT_EQ(r.num_components, 3);
  // Reverse topological numbering: edge u->v implies comp[u] >= comp[v].
  EXPECT_GE(r.component[0], r.component[1]);
  EXPECT_GE(r.component[1], r.component[2]);
}

TEST(SccTest, TwoComponentsWithBridge) {
  // {0,1} cycle -> {2,3} cycle
  SccResult r =
      StronglyConnectedComponents(4, {{1}, {0, 2}, {3}, {2}});
  EXPECT_EQ(r.num_components, 2);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[2], r.component[3]);
  EXPECT_NE(r.component[0], r.component[2]);
  EXPECT_GE(r.component[0], r.component[2]);
}

TEST(SccTest, SelfLoopIsItsOwnComponent) {
  SccResult r = StronglyConnectedComponents(2, {{0}, {}});
  EXPECT_EQ(r.num_components, 2);
}

TEST(SccTest, EmptyGraph) {
  SccResult r = StronglyConnectedComponents(0, {});
  EXPECT_EQ(r.num_components, 0);
}

TEST(VarKeyTableTest, InternsSpansOfDifferentLengths) {
  VarKeyTable table;
  int a[] = {1, 2, 3};
  int b[] = {1, 2};
  int c[] = {1, 2, 3, 4};
  EXPECT_EQ(table.Intern(a, 3), (std::pair<std::uint32_t, bool>(0, true)));
  EXPECT_EQ(table.Intern(b, 2), (std::pair<std::uint32_t, bool>(1, true)));
  EXPECT_EQ(table.Intern(c, 4), (std::pair<std::uint32_t, bool>(2, true)));
  // Re-interning returns the existing dense index.
  EXPECT_EQ(table.Intern(a, 3), (std::pair<std::uint32_t, bool>(0, false)));
  EXPECT_EQ(table.Intern(b, 2), (std::pair<std::uint32_t, bool>(1, false)));
  EXPECT_EQ(table.size(), 3u);
  // A prefix of an interned key is a distinct key.
  EXPECT_EQ(table.Find(c, 3), 0u);
  EXPECT_EQ(table.Find(c, 4), 2u);
  EXPECT_EQ(table.KeyLength(2), 4u);
  EXPECT_EQ(table.KeyData(1)[1], 2);
}

TEST(VarKeyTableTest, FindOnEmptyAndMissing) {
  VarKeyTable table;
  int key[] = {7};
  EXPECT_EQ(table.Find(key, 1), VarKeyTable::kNotFound);
  table.Intern(key, 1);
  int other[] = {8};
  EXPECT_EQ(table.Find(other, 1), VarKeyTable::kNotFound);
  EXPECT_EQ(table.Find(key, 1), 0u);
}

TEST(VarKeyTableTest, SurvivesGrowth) {
  VarKeyTable table;
  std::vector<int> key(3);
  for (int i = 0; i < 1000; ++i) {
    key = {i, i * 31, i % 7};
    auto [index, fresh] = table.Intern(key.data(), key.size());
    EXPECT_TRUE(fresh);
    EXPECT_EQ(index, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(table.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    key = {i, i * 31, i % 7};
    EXPECT_EQ(table.Find(key.data(), key.size()),
              static_cast<std::uint32_t>(i));
  }
}

// Robin-hood probing invariants shared by both flat tables: dense ids
// stay append-order (the probing scheme only decides slot placement,
// never id assignment), Find and Intern agree on membership after heavy
// displacement and growth, and max_probe bounds every successful
// lookup's displacement.
TEST(FlatKeyTableTest, RobinHoodPreservesDenseIdOrderUnderChurn) {
  FlatKeyTable table(2);
  // Adversarial-ish keys: many share low hash bits early on, forcing
  // displacement chains and swap-on-richer inserts across several
  // growth doublings.
  std::vector<std::array<int, 2>> keys;
  for (int i = 0; i < 2000; ++i) {
    keys.push_back({i * 16, (i * 7) % 13});
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto [index, fresh] = table.Intern(keys[i].data());
    ASSERT_TRUE(fresh);
    ASSERT_EQ(index, static_cast<std::uint32_t>(i));  // append order
  }
  EXPECT_EQ(table.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(table.Find(keys[i].data()), static_cast<std::uint32_t>(i));
    EXPECT_EQ(table.KeyData(i)[0], keys[i][0]);
    EXPECT_EQ(table.KeyData(i)[1], keys[i][1]);
    auto [index, fresh] = table.Intern(keys[i].data());
    EXPECT_FALSE(fresh);
    EXPECT_EQ(index, static_cast<std::uint32_t>(i));
  }
  // Misses exit early (never scan to the next empty slot) and report
  // kNotFound.
  for (int i = 0; i < 100; ++i) {
    int missing[] = {i * 16 + 1, -i - 1};
    EXPECT_EQ(table.Find(missing), FlatKeyTable::kNotFound);
  }
  // The displacement bound is maintained and small relative to the
  // table (load <= 1/2 keeps robin-hood probe chains short).
  EXPECT_LT(table.max_probe(), 64u);
}

TEST(VarKeyTableTest, RobinHoodMaxProbeBoundsLookups) {
  VarKeyTable table;
  std::vector<int> key;
  for (int i = 0; i < 1500; ++i) {
    key = {i, i ^ 0x55, i % 3};
    table.Intern(key.data(), key.size());
  }
  EXPECT_LT(table.max_probe(), 64u);
  for (int i = 0; i < 1500; ++i) {
    key = {i, i ^ 0x55, i % 3};
    EXPECT_EQ(table.Find(key.data(), key.size()),
              static_cast<std::uint32_t>(i));
  }
  key = {-1, -2, -3};
  EXPECT_EQ(table.Find(key.data(), key.size()), VarKeyTable::kNotFound);
}

TEST(IterationTest, ProductEnumeratesAll) {
  std::vector<std::vector<std::size_t>> seen;
  ForEachProduct({2, 3}, [&](const std::vector<std::size_t>& c) {
    seen.push_back(c);
    return true;
  });
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen.front(), (std::vector<std::size_t>{0, 0}));
}

TEST(IterationTest, ProductEmptyDimensions) {
  int count = 0;
  ForEachProduct({}, [&](const std::vector<std::size_t>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);  // one empty choice
  count = 0;
  ForEachProduct({3, 0, 2}, [&](const std::vector<std::size_t>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);  // a zero dimension kills the product
}

TEST(IterationTest, ProductEarlyStop) {
  int count = 0;
  bool completed = ForEachProduct({10, 10}, [&](const std::vector<std::size_t>&) {
    return ++count < 5;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 5);
}

TEST(IterationTest, SubsetMasks) {
  int count = 0;
  ForEachSubsetMask(4, [&](std::uint64_t) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 16);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  // The fixpoint-round usage pattern: one pool, many small batches.
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(7, [&](std::size_t i) { total.fetch_add(i + 1); });
  }
  EXPECT_EQ(total.load(), 200u * (7u * 8u / 2u));
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::size_t sum = 0;  // no atomics needed: everything runs on the caller
  pool.ParallelFor(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
  pool.ParallelFor(0, [&](std::size_t) { ADD_FAILURE() << "n=0 ran"; });
}

TEST(ThreadPoolTest, HardwareConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

}  // namespace
}  // namespace datalog
