#include <gtest/gtest.h>

#include "src/ast/parser.h"
#include "src/ast/rule.h"

namespace datalog {
namespace {

Rule MustParseRule(const std::string& text) {
  StatusOr<Rule> rule = ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  return *rule;
}

Program MustParse(const std::string& text) {
  StatusOr<Program> program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return *program;
}

TEST(RuleTest, ToStringRoundForms) {
  EXPECT_EQ(MustParseRule("p(X, Y) :- e(X, Z), p(Z, Y).").ToString(),
            "p(X, Y) :- e(X, Z), p(Z, Y).");
  EXPECT_EQ(MustParseRule("p(X).").ToString(), "p(X).");
}

TEST(RuleTest, VariableNamesHeadFirst) {
  Rule r = MustParseRule("p(Y, X) :- e(X, Z).");
  EXPECT_EQ(r.VariableNames(), (std::vector<std::string>{"Y", "X", "Z"}));
}

TEST(RuleTest, SubstitutionAppliesToHeadAndBody) {
  Rule r = MustParseRule("p(X) :- e(X, Y).");
  Substitution s;
  s.emplace("X", Term::Constant("a"));
  Rule expected = MustParseRule("p(a) :- e(a, Y).");
  EXPECT_EQ(ApplySubstitution(s, r), expected);
}

TEST(ProgramTest, IdbEdbSplit) {
  Program p = MustParse(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), buys(Z, Y).
  )");
  EXPECT_EQ(p.IdbPredicates(), (std::set<std::string>{"buys"}));
  EXPECT_EQ(p.EdbPredicates(), (std::set<std::string>{"likes", "trendy"}));
  EXPECT_TRUE(p.IsIdb("buys"));
  EXPECT_FALSE(p.IsIdb("likes"));
}

TEST(ProgramTest, PredicateArity) {
  Program p = MustParse("p(X, Y) :- e(X, Y), g(X).");
  EXPECT_EQ(p.PredicateArity("p"), 2u);
  EXPECT_EQ(p.PredicateArity("g"), 1u);
}

TEST(ProgramTest, RulesFor) {
  Program p = MustParse(R"(
    p(X) :- e(X).
    q(X) :- p(X).
    p(X) :- f(X).
  )");
  EXPECT_EQ(p.RulesFor("p"), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(p.RulesFor("q"), (std::vector<std::size_t>{1}));
}

TEST(ProgramTest, ValidateRejectsInconsistentArity) {
  Program p;
  p.AddRule(Rule(Atom("p", {Term::Variable("X")}),
                 {Atom("e", {Term::Variable("X")})}));
  p.AddRule(Rule(Atom("p", {Term::Variable("X"), Term::Variable("Y")}),
                 {Atom("e", {Term::Variable("X")})}));
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ProgramTest, ValidateRejectsEmptyProgram) {
  Program p;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ProgramTest, ValidateAcceptsUnsafeFacts) {
  // The paper's Example 6.2 uses `dist0(x, x) :- .` (empty body).
  Program p = MustParse("dist0(X, X) :- .");
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_TRUE(p.rules()[0].body().empty());
}

}  // namespace
}  // namespace datalog
