// The AST <-> IR round-trip contract (docs/ir.md): interning a program or
// a union of CQs into the shared IR and decoding it back must reproduce
// the same AST objects — same names, same order, same rendering. Also
// pins the TermId tagging scheme and the dictionary bidirectionality the
// containment and CQ layers rely on.
#include "src/ir/ir.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/ast/rule.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

TEST(TermIdTest, TagsSeparateVariablesFromConstants) {
  ir::TermId v = ir::TermId::Variable(7);
  ir::TermId c = ir::TermId::Constant(7);
  EXPECT_TRUE(v.is_variable());
  EXPECT_FALSE(v.is_constant());
  EXPECT_TRUE(c.is_constant());
  EXPECT_FALSE(c.is_variable());
  EXPECT_EQ(v.index(), 7u);
  EXPECT_EQ(c.index(), 7u);
  EXPECT_NE(v, c);  // same index, different namespaces
  EXPECT_EQ(v, ir::TermId::Variable(7));
  EXPECT_EQ(ir::TermId::FromRaw(v.raw()), v);
}

TEST(TermIdTest, DefaultConstructedIsInvalid) {
  ir::TermId id;
  EXPECT_FALSE(id.valid());
  EXPECT_TRUE(ir::TermId::Variable(0).valid());
  EXPECT_TRUE(ir::TermId::Constant(0).valid());
}

TEST(NameDictionaryTest, BidirectionalAndDense) {
  ir::NameDictionary dict;
  EXPECT_EQ(dict.Intern("alpha"), 0u);
  EXPECT_EQ(dict.Intern("beta"), 1u);
  EXPECT_EQ(dict.Intern("alpha"), 0u);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.name(0), "alpha");
  EXPECT_EQ(dict.name(1), "beta");
  EXPECT_EQ(dict.Find("beta"), 1u);
  EXPECT_EQ(dict.Find("gamma"), ir::NameDictionary::kNotFound);
}

TEST(IrSubstitutionTest, AppliesOnlyToBoundVariables) {
  ir::IrSubstitution subst(2);
  subst[0] = ir::TermId::Constant(5);
  EXPECT_EQ(ApplyIrSubstitution(subst, ir::TermId::Variable(0)),
            ir::TermId::Constant(5));
  // Unbound variable and constants pass through.
  EXPECT_EQ(ApplyIrSubstitution(subst, ir::TermId::Variable(1)),
            ir::TermId::Variable(1));
  EXPECT_EQ(ApplyIrSubstitution(subst, ir::TermId::Constant(0)),
            ir::TermId::Constant(0));
  // A variable beyond the substitution's frame passes through.
  EXPECT_EQ(ApplyIrSubstitution(subst, ir::TermId::Variable(9)),
            ir::TermId::Variable(9));
}

void ExpectProgramRoundTrip(const std::string& text) {
  Program program = MustParseProgram(text);
  ir::ProgramIr ir_form = ir::ProgramIr::FromProgram(program);
  Program decoded = ir_form.ToProgram();
  EXPECT_EQ(decoded.ToString(), program.ToString());
  EXPECT_TRUE(decoded == program);
}

TEST(ProgramIrTest, RoundTripsParsedPrograms) {
  ExpectProgramRoundTrip(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  ExpectProgramRoundTrip(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), buys(Z, Y).
  )");
  // Constants, repeated variables, 0-ary atoms, and empty bodies.
  ExpectProgramRoundTrip(R"(
    r(X) :- e(root, X).
    r(X) :- r(Y), e(Y, X), flag().
    d(X, X) :- .
  )");
}

TEST(ProgramIrTest, RoundTripsUnionsOfCqs) {
  UnionOfCqs ucq;
  ucq.Add(MustParseCq("q(X, Y) :- e(X, Z), e(Z, Y)."));
  ucq.Add(MustParseCq("q(X, X) :- e(X, X)."));
  ucq.Add(MustParseCq("q(a, Y) :- e(a, Y)."));
  ucq.Add(MustParseCq("q(X, Y) :- ."));
  ir::ProgramIr ir_form = ir::ProgramIr::FromUnion(ucq);
  UnionOfCqs decoded = ir_form.ToUnion();
  ASSERT_EQ(decoded.size(), ucq.size());
  EXPECT_EQ(decoded.ToString(), ucq.ToString());
}

TEST(ProgramIrTest, FlatSpansExposeDenseIds) {
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  ir::ProgramIr ir_form = ir::ProgramIr::FromProgram(program);
  ASSERT_EQ(ir_form.num_rules(), 1u);
  const ir::RuleSpan& rule = ir_form.rule(0);
  // Head plus two body atoms, laid out head-first.
  EXPECT_EQ(rule.body_end - rule.body_begin, 2u);
  const ir::AtomSpan& head = ir_form.atom(rule.head_atom);
  EXPECT_EQ(head.arity(), 2u);
  EXPECT_EQ(ir_form.predicates().name(head.predicate), "p");
  // Variables are interned in first-occurrence order: X, Y, Z.
  const ir::TermId* head_args = ir_form.args(head);
  EXPECT_TRUE(head_args[0].is_variable());
  EXPECT_EQ(ir_form.variables().name(head_args[0].index()), "X");
  EXPECT_EQ(ir_form.variables().name(head_args[1].index()), "Y");
  const ir::AtomSpan& body0 = ir_form.atom(rule.body_begin);
  EXPECT_EQ(ir_form.predicates().name(body0.predicate), "e");
  const ir::TermId* body0_args = ir_form.args(body0);
  // e(X, Z): X is the same dense id as the head's X.
  EXPECT_EQ(body0_args[0], head_args[0]);
  EXPECT_EQ(ir_form.variables().name(body0_args[1].index()), "Z");
  // Decoding a single rule reproduces the AST rule.
  EXPECT_TRUE(ir_form.DecodeRule(0) == program.rules()[0]);
}

TEST(ProgramIrTest, SharedConstantsInternOnce) {
  Program program = MustParseProgram(R"(
    r(X) :- e(root, X).
    s(X) :- f(root, X), g(other).
  )");
  ir::ProgramIr ir_form = ir::ProgramIr::FromProgram(program);
  EXPECT_EQ(ir_form.constants().size(), 2u);  // root, other
  EXPECT_EQ(ir_form.constants().Find("root"), 0u);
  EXPECT_EQ(ir_form.constants().Find("other"), 1u);
}

TEST(CarriedIrTest, ProgramCachesAndInvalidatesOnMutation) {
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Z), p(Z, Y).
    p(X, Y) :- e(X, Y).
  )");
  EXPECT_FALSE(program.has_carried_ir());
  const std::size_t builds_before = ir::ProgramIrBuildCount();
  std::shared_ptr<ir::ProgramIr> first = ir::CarriedIr(program);
  EXPECT_TRUE(program.has_carried_ir());
  EXPECT_EQ(ir::ProgramIrBuildCount(), builds_before + 1);
  // Second access returns the same object without another interning pass.
  std::shared_ptr<ir::ProgramIr> second = ir::CarriedIr(program);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(ir::ProgramIrBuildCount(), builds_before + 1);
  // The carried IR round-trips the program.
  EXPECT_TRUE(first->ToProgram() == program);
  // Copies share the cache; mutating the copy drops only the copy's.
  Program copy = program;
  EXPECT_TRUE(copy.has_carried_ir());
  EXPECT_EQ(ir::CarriedIr(copy).get(), first.get());
  copy.AddRule(MustParseRule("p(X, Y) :- f(X, Y)."));
  EXPECT_FALSE(copy.has_carried_ir());
  EXPECT_TRUE(program.has_carried_ir());
  // Rebuilding after mutation reflects the new rule.
  std::shared_ptr<ir::ProgramIr> rebuilt = ir::CarriedIr(copy);
  EXPECT_EQ(rebuilt->num_rules(), 3u);
  EXPECT_TRUE(rebuilt->ToProgram() == copy);
}

TEST(CarriedIrTest, UnionCachesAndInvalidatesOnMutation) {
  UnionOfCqs ucq;
  ucq.Add(MustParseCq("q(X, Y) :- e(X, Y)."));
  ucq.Add(MustParseCq("q(X, Y) :- e(X, Z), e(Z, Y)."));
  EXPECT_FALSE(ucq.has_carried_ir());
  std::shared_ptr<ir::ProgramIr> carried = ir::CarriedIr(ucq);
  EXPECT_TRUE(ucq.has_carried_ir());
  EXPECT_EQ(ir::CarriedIr(ucq).get(), carried.get());
  EXPECT_EQ(carried->num_disjuncts(), 2u);
  EXPECT_TRUE(carried->ToUnion().ToString() == ucq.ToString());
  ucq.Add(MustParseCq("q(X, X) :- ."));
  EXPECT_FALSE(ucq.has_carried_ir());
}

TEST(CarriedIrTest, CopyOnFoldLeavesTheSharedIrUntouched) {
  // The carried IR is shared immutable state; a holder that needs to
  // intern extra names (the decider folds Θ in) takes a private copy
  // and folds into that. The copy is id-for-id — existing ids carry
  // over — and the shared object's dictionaries never grow.
  Program program = MustParseProgram("p(X) :- e(X, c0).");
  std::shared_ptr<ir::ProgramIr> carried = ir::CarriedIr(program);
  const std::size_t shared_preds = carried->predicates().size();
  const std::size_t shared_consts = carried->constants().size();
  const std::size_t builds_before = ir::ProgramIrBuildCount();
  ir::ProgramIr folded = *carried;  // copy-on-fold: not an interning pass
  EXPECT_EQ(ir::ProgramIrBuildCount(), builds_before);
  std::uint32_t new_pred = folded.predicates().Intern("brand_new_predicate");
  folded.constants().Intern("brand_new_constant");
  EXPECT_EQ(folded.predicates().Find("p"), carried->predicates().Find("p"));
  EXPECT_EQ(folded.constants().Find("c0"), carried->constants().Find("c0"));
  EXPECT_EQ(new_pred, shared_preds);  // appended past the shared ids
  EXPECT_EQ(carried->predicates().size(), shared_preds);
  EXPECT_EQ(carried->constants().size(), shared_consts);
  // Both decode back to the same program (fold-ins add no structure).
  EXPECT_TRUE(carried->ToProgram() == program);
  EXPECT_TRUE(folded.ToProgram() == program);
}

TEST(CarriedIrTest, ConcurrentFirstAccessBuildsOnce) {
  // The slot is build-once: threads racing on the first CarriedIr call
  // of a shared const Program all get the same object, and exactly one
  // interning pass runs. (The TSan CI job runs this with real threads.)
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Z), p(Z, Y).
    p(X, Y) :- e(X, Y).
  )");
  const std::size_t builds_before = ir::ProgramIrBuildCount();
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<ir::ProgramIr>> seen(kThreads);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(
          [&, t] { seen[t] = ir::CarriedIr(program); });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(ir::ProgramIrBuildCount(), builds_before + 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t].get(), seen[0].get());
  }
  EXPECT_TRUE(seen[0]->ToProgram() == program);

  UnionOfCqs ucq;
  ucq.Add(MustParseCq("q(X, Y) :- e(X, Y)."));
  ucq.Add(MustParseCq("q(X, Y) :- e(X, Z), e(Z, Y)."));
  std::vector<std::shared_ptr<ir::ProgramIr>> useen(kThreads);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] { useen[t] = ir::CarriedIr(ucq); });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(useen[t].get(), useen[0].get());
  }
}

}  // namespace
}  // namespace datalog
