#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

TEST(ConstantDictionaryTest, InternIsIdempotent) {
  ConstantDictionary dictionary;
  int a = dictionary.Intern("a");
  int b = dictionary.Intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(dictionary.Intern("a"), a);
  EXPECT_EQ(dictionary.size(), 2u);
  EXPECT_EQ(dictionary.NameOf(a), "a");
  EXPECT_EQ(dictionary.Lookup("b"), b);
  EXPECT_EQ(dictionary.Lookup("missing"), -1);
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2}));
  EXPECT_TRUE(r.Insert({2, 1}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({3, 3}));
}

TEST(RelationTest, SortedTuplesAreDeterministic) {
  Relation r(2);
  r.Insert({3, 1});
  r.Insert({1, 2});
  r.Insert({1, 1});
  std::vector<Tuple> sorted = r.SortedTuples();
  EXPECT_EQ(sorted, (std::vector<Tuple>{{1, 1}, {1, 2}, {3, 1}}));
}

TEST(RelationTest, ZeroArityRelationHoldsTheEmptyTuple) {
  Relation r(0);
  EXPECT_TRUE(r.Insert({}));
  EXPECT_FALSE(r.Insert({}));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains({}));
}

TEST(DatabaseTest, AddFactAndDecode) {
  Database db;
  db.AddFact("e", {"a", "b"});
  db.AddFact("e", {"b", "c"});
  const Relation& e = db.GetRelation("e", 2);
  EXPECT_EQ(e.size(), 2u);
  for (const Tuple& tuple : e.tuples()) {
    std::vector<std::string> decoded = db.DecodeTuple(tuple);
    EXPECT_EQ(decoded.size(), 2u);
  }
  EXPECT_EQ(db.TotalFacts(), 2u);
}

TEST(DatabaseTest, AddFactAtomRejectsVariables) {
  Database db;
  EXPECT_TRUE(db.AddFactAtom(MustParseAtom("e(a, b)")).ok());
  Status status = db.AddFactAtom(MustParseAtom("e(X, b)"));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, MissingRelationIsEmpty) {
  Database db;
  db.AddFact("e", {"a", "b"});
  EXPECT_FALSE(db.HasRelation("f"));
  EXPECT_TRUE(db.GetRelation("f", 3).empty());
  EXPECT_EQ(db.GetRelation("f", 3).arity(), 3u);
}

TEST(DatabaseTest, ActiveDomainCollectsAllTupleValues) {
  Database db;
  db.AddFact("e", {"a", "b"});
  db.AddFact("f", {"c"});
  std::vector<int> domain = db.ActiveDomain();
  EXPECT_EQ(domain.size(), 3u);
  // Interned-but-unused constants are not in the active domain.
  db.dictionary().Intern("unused");
  EXPECT_EQ(db.ActiveDomain().size(), 3u);
}

TEST(DatabaseTest, ToStringListsFactsInOrder) {
  Database db;
  db.AddFact("e", {"b", "a"});
  db.AddFact("e", {"a", "b"});
  db.AddFact("d", {"x"});
  std::string rendered = db.ToString();
  // Relations alphabetical, tuples sorted within each.
  EXPECT_LT(rendered.find("d(x)"), rendered.find("e("));
  EXPECT_NE(rendered.find("e(b, a)"), std::string::npos);
}

}  // namespace
}  // namespace datalog
