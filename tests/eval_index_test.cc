// Differential testing of the indexed semi-naive evaluation engine: on
// seeded random EDBs over the paper's example program families, every
// engine configuration — naive or semi-naive iteration, with and without
// hash column indexes and runtime join reordering — must produce the
// identical fixpoint (same relations, same tuples). Also pins down the
// quantitative index win: candidate-tuple probes drop by an order of
// magnitude on the transitive-closure workload.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/engine/eval.h"
#include "src/engine/random_db.h"
#include "src/generators/examples.h"
#include "src/util/strings.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

EvalOptions Configure(bool semi_naive, bool use_index, bool reorder_joins) {
  EvalOptions options;
  options.semi_naive = semi_naive;
  options.use_index = use_index;
  options.reorder_joins = reorder_joins;
  return options;
}

struct ExampleProgram {
  const char* name;
  Program program;
};

std::vector<ExampleProgram> ExamplePrograms() {
  std::vector<ExampleProgram> programs;
  programs.push_back({"buys1", Buys1Program()});
  programs.push_back({"buys2", Buys2Program()});
  programs.push_back({"buys1_nonrec", Buys1NonrecursiveProgram()});
  programs.push_back({"tc_linear", TransitiveClosureProgram("e", "e")});
  programs.push_back({"tc_nonlinear", NonlinearTransitiveClosureProgram()});
  programs.push_back({"dist2", DistProgram(2)});
  programs.push_back({"distle2", DistLeProgram(2)});  // empty-body rules
  programs.push_back({"equal1", EqualProgram(1)});
  programs.push_back({"word2", WordProgram(2)});
  programs.push_back({"chain2", ChainProgram(2)});
  return programs;
}

class EvalIndexPropertyTest : public ::testing::TestWithParam<int> {};

// Naive, semi-naive, and indexed/reordered semi-naive evaluation agree
// on the full fixpoint database (compared via the deterministic sorted
// rendering, which is independent of predicate-id and row order).
TEST_P(EvalIndexPropertyTest, AllEngineConfigurationsAgreeOnTheFixpoint) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  RandomDbOptions db_options;
  db_options.seed = seed + 1;
  db_options.domain_size = 4;
  db_options.tuples_per_relation = 6;
  const struct {
    bool semi_naive;
    bool use_index;
    bool reorder_joins;
  } configs[] = {
      {false, false, false},  // naive scan engine
      {false, true, true},    // naive, indexed + reordered
      {true, false, false},   // semi-naive scan engine (pre-index engine)
      {true, true, false},    // indexes without reordering
      {true, false, true},    // reordering without indexes
      {true, true, true},     // the full indexed engine (default)
  };
  for (ExampleProgram& example : ExamplePrograms()) {
    Database edb = RandomDatabaseFor(example.program, db_options);
    std::string reference;
    for (const auto& config : configs) {
      EvalOptions options = Configure(config.semi_naive, config.use_index,
                                      config.reorder_joins);
      StatusOr<Database> result =
          EvaluateProgram(example.program, edb, options);
      ASSERT_TRUE(result.ok())
          << example.name << ": " << result.status();
      std::string rendered = result->ToString();
      if (reference.empty()) {
        reference = rendered;
      } else {
        EXPECT_EQ(rendered, reference)
            << example.name << " seed " << seed << " diverges for config"
            << " semi_naive=" << config.semi_naive
            << " use_index=" << config.use_index
            << " reorder_joins=" << config.reorder_joins;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomEdbs, EvalIndexPropertyTest,
                         ::testing::Range(0, 12));

TEST(EvalIndexTest, IndexedJoinsCutProbesTenfoldOnTransitiveClosure) {
  Program tc = TransitiveClosureProgram("e", "e");
  Database db;
  for (int i = 0; i < 96; ++i) {
    db.AddFact("e", {StrCat("n", i), StrCat("n", i + 1)});
  }
  EvalStats indexed_stats;
  EvalStats scan_stats;
  ASSERT_TRUE(
      EvaluateGoal(tc, "p", db, Configure(true, true, true), &indexed_stats)
          .ok());
  ASSERT_TRUE(
      EvaluateGoal(tc, "p", db, Configure(true, false, false), &scan_stats)
          .ok());
  EXPECT_EQ(indexed_stats.facts_derived, scan_stats.facts_derived);
  // The indexed engine touches only candidate rows from matching index
  // buckets; the scan engine examines every tuple at every level.
  EXPECT_GE(scan_stats.join_probes, 10 * indexed_stats.join_probes);
  EXPECT_GT(indexed_stats.index_probes, 0u);
  EXPECT_GT(indexed_stats.index_builds, 0u);
  EXPECT_GT(indexed_stats.tuples_indexed, 0u);
  EXPECT_EQ(scan_stats.index_probes, 0u);
  EXPECT_EQ(scan_stats.tuples_indexed, 0u);
}

// The projection-pushing leg: when a join variable is dead downstream
// (buys1's recursive rule joins trendy(X) with buys(Z, Y) where Z is
// never used again), candidate rows collapse to representatives and the
// probe count stops tracking the full cartesian product.
TEST(EvalIndexTest, ProjectionCollapsesDeadJoinColumns) {
  Program buys = Buys1Program();
  Database db;
  for (int p = 0; p < 40; ++p) {
    if (p % 3 == 0) db.AddFact("trendy", {StrCat("p", p)});
    for (int i = 0; i < 20; ++i) {
      if ((p + i) % 5 == 0) {
        db.AddFact("likes", {StrCat("p", p), StrCat("i", i)});
      }
    }
  }
  EvalStats indexed_stats;
  EvalStats scan_stats;
  StatusOr<Relation> indexed =
      EvaluateGoal(buys, "buys", db, Configure(true, true, true),
                   &indexed_stats);
  StatusOr<Relation> scanned =
      EvaluateGoal(buys, "buys", db, Configure(true, false, false),
                   &scan_stats);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(*indexed, *scanned);
  EXPECT_GE(scan_stats.join_probes, 10 * indexed_stats.join_probes);
}

}  // namespace
}  // namespace datalog
