// Differential testing of the indexed semi-naive evaluation engine: on
// seeded random EDBs over the paper's example program families, every
// engine configuration — naive or semi-naive iteration, with and without
// hash column indexes and runtime join reordering — must produce the
// identical fixpoint (same relations, same tuples). Also pins down the
// quantitative index win: candidate-tuple probes drop by an order of
// magnitude on the transitive-closure workload.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/eval.h"
#include "src/engine/index.h"
#include "src/engine/random_db.h"
#include "src/generators/examples.h"
#include "src/util/strings.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

EvalOptions Configure(bool semi_naive, bool use_index, bool reorder_joins) {
  EvalOptions options;
  options.semi_naive = semi_naive;
  options.use_index = use_index;
  options.reorder_joins = reorder_joins;
  return options;
}

struct ExampleProgram {
  const char* name;
  Program program;
};

std::vector<ExampleProgram> ExamplePrograms() {
  std::vector<ExampleProgram> programs;
  programs.push_back({"buys1", Buys1Program()});
  programs.push_back({"buys2", Buys2Program()});
  programs.push_back({"buys1_nonrec", Buys1NonrecursiveProgram()});
  programs.push_back({"tc_linear", TransitiveClosureProgram("e", "e")});
  programs.push_back({"tc_nonlinear", NonlinearTransitiveClosureProgram()});
  programs.push_back({"dist2", DistProgram(2)});
  programs.push_back({"distle2", DistLeProgram(2)});  // empty-body rules
  programs.push_back({"equal1", EqualProgram(1)});
  programs.push_back({"word2", WordProgram(2)});
  programs.push_back({"chain2", ChainProgram(2)});
  return programs;
}

class EvalIndexPropertyTest : public ::testing::TestWithParam<int> {};

// Naive, semi-naive, and indexed/reordered semi-naive evaluation agree
// on the full fixpoint database (compared via the deterministic sorted
// rendering, which is independent of predicate-id and row order).
TEST_P(EvalIndexPropertyTest, AllEngineConfigurationsAgreeOnTheFixpoint) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  RandomDbOptions db_options;
  db_options.seed = seed + 1;
  db_options.domain_size = 4;
  db_options.tuples_per_relation = 6;
  const struct {
    bool semi_naive;
    bool use_index;
    bool reorder_joins;
  } configs[] = {
      {false, false, false},  // naive scan engine
      {false, true, true},    // naive, indexed + reordered
      {true, false, false},   // semi-naive scan engine (pre-index engine)
      {true, true, false},    // indexes without reordering
      {true, false, true},    // reordering without indexes
      {true, true, true},     // the full indexed engine (default)
  };
  for (ExampleProgram& example : ExamplePrograms()) {
    Database edb = RandomDatabaseFor(example.program, db_options);
    std::string reference;
    for (const auto& config : configs) {
      EvalOptions options = Configure(config.semi_naive, config.use_index,
                                      config.reorder_joins);
      StatusOr<Database> result =
          EvaluateProgram(example.program, edb, options);
      ASSERT_TRUE(result.ok())
          << example.name << ": " << result.status();
      std::string rendered = result->ToString();
      if (reference.empty()) {
        reference = rendered;
      } else {
        EXPECT_EQ(rendered, reference)
            << example.name << " seed " << seed << " diverges for config"
            << " semi_naive=" << config.semi_naive
            << " use_index=" << config.use_index
            << " reorder_joins=" << config.reorder_joins;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomEdbs, EvalIndexPropertyTest,
                         ::testing::Range(0, 12));

TEST(EvalIndexTest, IndexedJoinsCutProbesTenfoldOnTransitiveClosure) {
  Program tc = TransitiveClosureProgram("e", "e");
  Database db;
  for (int i = 0; i < 96; ++i) {
    db.AddFact("e", {StrCat("n", i), StrCat("n", i + 1)});
  }
  EvalStats indexed_stats;
  EvalStats scan_stats;
  ASSERT_TRUE(
      EvaluateGoal(tc, "p", db, Configure(true, true, true), &indexed_stats)
          .ok());
  ASSERT_TRUE(
      EvaluateGoal(tc, "p", db, Configure(true, false, false), &scan_stats)
          .ok());
  EXPECT_EQ(indexed_stats.facts_derived, scan_stats.facts_derived);
  // The indexed engine touches only candidate rows from matching index
  // buckets; the scan engine examines every tuple at every level.
  EXPECT_GE(scan_stats.join_probes, 10 * indexed_stats.join_probes);
  EXPECT_GT(indexed_stats.index_probes, 0u);
  EXPECT_GT(indexed_stats.index_builds, 0u);
  EXPECT_GT(indexed_stats.tuples_indexed, 0u);
  EXPECT_EQ(scan_stats.index_probes, 0u);
  EXPECT_EQ(scan_stats.tuples_indexed, 0u);
}

// The parallel determinism suite: for every engine configuration
// (naive/semi-naive × index × reorder) and every thread count, staged
// parallel rounds must compute the identical fixpoint — the same
// relations with the same tuples (compared via the sorted rendering)
// and the same count of derived facts — as the serial engine. Shard
// counts are swept too, including the degenerate single shard.
class ParallelEvalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEvalPropertyTest, ThreadCountsAgreeOnTheFixpoint) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  RandomDbOptions db_options;
  db_options.seed = seed + 101;
  db_options.domain_size = 4;
  db_options.tuples_per_relation = 6;
  const struct {
    bool semi_naive;
    bool use_index;
    bool reorder_joins;
  } configs[] = {
      {false, true, true},   // naive, indexed + reordered
      {true, false, false},  // semi-naive scan engine
      {true, true, false},   // indexes without reordering
      {true, false, true},   // reordering without indexes
      {true, true, true},    // the full indexed engine (default)
  };
  const struct {
    int num_threads;
    int num_shards;
  } arms[] = {
      {2, 0}, {4, 0}, {0, 0},  // 0 = hardware concurrency
      {2, 1}, {4, 7},          // degenerate and odd shard counts
  };
  for (ExampleProgram& example : ExamplePrograms()) {
    Database edb = RandomDatabaseFor(example.program, db_options);
    for (const auto& config : configs) {
      EvalOptions serial = Configure(config.semi_naive, config.use_index,
                                     config.reorder_joins);
      EvalStats serial_stats;
      StatusOr<Database> reference =
          EvaluateProgram(example.program, edb, serial, &serial_stats);
      ASSERT_TRUE(reference.ok()) << example.name << ": "
                                  << reference.status();
      const std::string rendered = reference->ToString();
      for (const auto& arm : arms) {
        EvalOptions parallel = serial;
        parallel.num_threads = arm.num_threads;
        parallel.num_shards = arm.num_shards;
        EvalStats parallel_stats;
        StatusOr<Database> result =
            EvaluateProgram(example.program, edb, parallel, &parallel_stats);
        ASSERT_TRUE(result.ok()) << example.name << ": " << result.status();
        EXPECT_EQ(result->ToString(), rendered)
            << example.name << " seed " << seed << " diverges at"
            << " num_threads=" << arm.num_threads
            << " num_shards=" << arm.num_shards
            << " semi_naive=" << config.semi_naive
            << " use_index=" << config.use_index
            << " reorder_joins=" << config.reorder_joins;
        EXPECT_EQ(parallel_stats.facts_derived, serial_stats.facts_derived)
            << example.name << " seed " << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomEdbs, ParallelEvalPropertyTest,
                         ::testing::Range(0, 6));

// A fixed thread count must also be deterministic run-to-run: same
// relations *in the same row order*, regardless of scheduling. The
// rendering is order-insensitive, so compare the raw row sequences.
TEST(ParallelEvalTest, RepeatedRunsProduceIdenticalRowOrder) {
  Program tc = NonlinearTransitiveClosureProgram();
  Database db;
  for (int i = 0; i < 24; ++i) {
    db.AddFact("e", {StrCat("n", i), StrCat("n", i + 1)});
  }
  EvalOptions options;
  options.num_threads = 4;
  StatusOr<Database> first = EvaluateProgram(tc, db, options);
  ASSERT_TRUE(first.ok());
  PredicateId p = first->predicates().Lookup("p");
  ASSERT_NE(p, kNoPredicate);
  for (int run = 0; run < 3; ++run) {
    StatusOr<Database> again = EvaluateProgram(tc, db, options);
    ASSERT_TRUE(again.ok());
    const Relation& a = first->RelationOf(p);
    const Relation& b = again->RelationOf(p);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t row = 0; row < a.size(); ++row) {
      ASSERT_EQ(a.RowTuple(row), b.RowTuple(row)) << "row " << row;
    }
  }
}

TEST(ParallelEvalTest, ParallelStatsCountRoundsStagingAndCollisions) {
  // Nonlinear TC derives the same path through many rule matches, so
  // staged duplicates (merge collisions) must show up; the serial run
  // must report none of the parallel counters.
  Program tc = NonlinearTransitiveClosureProgram();
  Database db;
  for (int i = 0; i < 16; ++i) {
    db.AddFact("e", {StrCat("n", i), StrCat("n", i + 1)});
  }
  EvalOptions parallel;
  parallel.num_threads = 2;
  EvalStats par_stats;
  ASSERT_TRUE(EvaluateProgram(tc, db, parallel, &par_stats).ok());
  EXPECT_GT(par_stats.rounds_parallel, 0);
  EXPECT_EQ(par_stats.rounds_parallel, par_stats.iterations);
  EXPECT_GT(par_stats.tuples_staged, 0u);
  EXPECT_GT(par_stats.merge_collisions, 0u);
  EXPECT_EQ(par_stats.tuples_staged - par_stats.merge_collisions,
            par_stats.facts_derived);
  EvalStats serial_stats;
  ASSERT_TRUE(EvaluateProgram(tc, db, EvalOptions(), &serial_stats).ok());
  EXPECT_EQ(serial_stats.rounds_parallel, 0);
  EXPECT_EQ(serial_stats.tuples_staged, 0u);
  EXPECT_EQ(serial_stats.merge_collisions, 0u);
  EXPECT_EQ(serial_stats.facts_derived, par_stats.facts_derived);
}

TEST(ParallelEvalTest, DerivedFactLimitStillAborts) {
  Program tc = NonlinearTransitiveClosureProgram();
  Database db;
  for (int i = 0; i < 32; ++i) {
    db.AddFact("e", {StrCat("n", i), StrCat("n", i + 1)});
  }
  EvalOptions options;
  options.num_threads = 4;
  options.limits.max_facts = 50;
  StatusOr<Database> result = EvaluateProgram(tc, db, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// --- the BucketArena chunk-id directory (hub-bucket delta seeks) -------

// SkipBelow through a hub bucket (past the directory threshold) must
// agree with plain iteration for every watermark, including chunk
// boundaries, mid-chunk positions, and past-the-end.
TEST(BucketArenaTest, DirectorySeeksMatchLinearIterationOnHubBuckets) {
  BucketArena arena;
  const std::uint32_t hub = arena.NewBucket();
  const std::uint32_t small = arena.NewBucket();
  // Interleave appends so the hub's chunks are not contiguous in the
  // arena, and give rows gaps so watermarks can fall between them.
  std::vector<std::uint32_t> hub_rows;
  for (std::uint32_t i = 0; i < 40 * BucketArena::kChunkRows; ++i) {
    arena.Append(hub, 3 * i);
    hub_rows.push_back(3 * i);
    // The small bucket stays below the directory threshold.
    if (i < 2 * BucketArena::kChunkRows) arena.Append(small, i);
  }
  ASSERT_NE(arena.directory(arena.bucket(hub)), nullptr);
  EXPECT_EQ(arena.directory(arena.bucket(hub))->size(), 40u);
  EXPECT_EQ(arena.directory(arena.bucket(small)), nullptr);
  const std::uint32_t last = hub_rows.back();
  for (std::uint32_t watermark :
       {0u, 1u, 3u, 41u, 42u,
        static_cast<std::uint32_t>(3 * BucketArena::kChunkRows),
        static_cast<std::uint32_t>(3 * BucketArena::kChunkRows - 1), 601u,
        last, last + 1, last + 100}) {
    ColumnIndex::BucketView view(&arena, &arena.bucket(hub));
    ColumnIndex::BucketView::Iterator it = view.begin();
    it.SkipBelow(watermark);
    std::vector<std::uint32_t> seen;
    for (; !it.done(); it.Next()) seen.push_back(it.row());
    std::vector<std::uint32_t> expected;
    for (std::uint32_t row : hub_rows) {
      if (row >= watermark) expected.push_back(row);
    }
    EXPECT_EQ(seen, expected) << "watermark " << watermark;
  }
}

// An iterator that has already advanced past the start must keep the
// monotone linear behavior (SkipBelow never moves backwards).
TEST(BucketArenaTest, SkipBelowOnAdvancedIteratorStaysMonotone) {
  BucketArena arena;
  const std::uint32_t hub = arena.NewBucket();
  for (std::uint32_t i = 0; i < 20 * BucketArena::kChunkRows; ++i) {
    arena.Append(hub, i);
  }
  ColumnIndex::BucketView view(&arena, &arena.bucket(hub));
  ColumnIndex::BucketView::Iterator it = view.begin();
  for (int i = 0; i < 50; ++i) it.Next();
  it.SkipBelow(10);  // already past 10: must not move backwards
  EXPECT_EQ(it.row(), 50u);
  it.SkipBelow(200);
  EXPECT_EQ(it.row(), 200u);
}

// The projection-pushing leg: when a join variable is dead downstream
// (buys1's recursive rule joins trendy(X) with buys(Z, Y) where Z is
// never used again), candidate rows collapse to representatives and the
// probe count stops tracking the full cartesian product.
TEST(EvalIndexTest, ProjectionCollapsesDeadJoinColumns) {
  Program buys = Buys1Program();
  Database db;
  for (int p = 0; p < 40; ++p) {
    if (p % 3 == 0) db.AddFact("trendy", {StrCat("p", p)});
    for (int i = 0; i < 20; ++i) {
      if ((p + i) % 5 == 0) {
        db.AddFact("likes", {StrCat("p", p), StrCat("i", i)});
      }
    }
  }
  EvalStats indexed_stats;
  EvalStats scan_stats;
  StatusOr<Relation> indexed =
      EvaluateGoal(buys, "buys", db, Configure(true, true, true),
                   &indexed_stats);
  StatusOr<Relation> scanned =
      EvaluateGoal(buys, "buys", db, Configure(true, false, false),
                   &scan_stats);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(*indexed, *scanned);
  EXPECT_GE(scan_stats.join_probes, 10 * indexed_stats.join_probes);
}

// The cost-based planner's differential cube: {cost_based on/off} ×
// {use_index} × {reorder_joins} × {use_strata} × threads {1, 2, 0} must
// all compute the identical fixpoint on random EDBs over every example
// program. This is the acceptance gate for the planner and the plan
// cache: byte-identical fact sets with cost_based on and off, at every
// thread count.
class CostBasedPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CostBasedPropertyTest, CostBasedConfigCubeAgreesOnTheFixpoint) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  RandomDbOptions db_options;
  db_options.seed = seed + 501;
  db_options.domain_size = 4;
  db_options.tuples_per_relation = 6;
  const int thread_arms[] = {1, 2, 0};  // 0 = hardware concurrency
  for (ExampleProgram& example : ExamplePrograms()) {
    Database edb = RandomDatabaseFor(example.program, db_options);
    std::string reference;
    for (bool cost_based : {false, true}) {
      for (bool use_index : {false, true}) {
        for (bool reorder_joins : {false, true}) {
          for (bool use_strata : {false, true}) {
            for (int num_threads : thread_arms) {
              EvalOptions options;
              options.cost_based = cost_based;
              options.use_index = use_index;
              options.reorder_joins = reorder_joins;
              options.use_strata = use_strata;
              options.num_threads = num_threads;
              StatusOr<Database> result =
                  EvaluateProgram(example.program, edb, options);
              ASSERT_TRUE(result.ok())
                  << example.name << ": " << result.status();
              std::string rendered = result->ToString();
              if (reference.empty()) {
                reference = rendered;
              } else {
                EXPECT_EQ(rendered, reference)
                    << example.name << " seed " << seed
                    << " diverges for config cost_based=" << cost_based
                    << " use_index=" << use_index
                    << " reorder_joins=" << reorder_joins
                    << " use_strata=" << use_strata
                    << " num_threads=" << num_threads;
              }
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomEdbs, CostBasedPropertyTest,
                         ::testing::Range(0, 4));

// Skew regression: a hub join where greedy ordering is a bad plan.
// reach(Z) :- reach(X), hub(X, Y), sel(Y, Z) with hub fan-out 64 per
// node and |sel| tiny. After the delta atom binds X, greedy's
// most-bound-args rule probes the fat hub bucket next (64 candidates,
// each spawning a sel probe); the cost model sees sel's full scan is
// cheaper than hub's average bucket, scans sel first, and probes hub
// with both columns bound (singleton buckets). Same fixpoint, and the
// cost-based plan must never examine more candidates than greedy's.
TEST(EvalIndexTest, CostBasedPlanProbesAtMostGreedyOnHubSkew) {
  Program prog = MustParseProgram(R"(
    reach(X) :- start(X).
    reach(Z) :- reach(X), hub(X, Y), sel(Y, Z).
  )");
  constexpr int kChain = 8;
  constexpr int kFanOut = 64;
  Database db;
  db.AddFact("start", {"a0"});
  for (int i = 0; i <= kChain; ++i) {
    for (int j = 0; j < kFanOut; ++j) {
      db.AddFact("hub", {StrCat("a", i), StrCat("b", j)});
    }
  }
  for (int i = 0; i < kChain; ++i) {
    db.AddFact("sel", {StrCat("b", i), StrCat("a", i + 1)});
  }
  EvalOptions cost = Configure(true, true, true);
  cost.cost_based = true;
  EvalOptions greedy = cost;
  greedy.cost_based = false;
  EvalStats cost_stats;
  EvalStats greedy_stats;
  StatusOr<Relation> cost_reach =
      EvaluateGoal(prog, "reach", db, cost, &cost_stats);
  StatusOr<Relation> greedy_reach =
      EvaluateGoal(prog, "reach", db, greedy, &greedy_stats);
  ASSERT_TRUE(cost_reach.ok());
  ASSERT_TRUE(greedy_reach.ok());
  EXPECT_EQ(*cost_reach, *greedy_reach);
  EXPECT_EQ(cost_stats.facts_derived, greedy_stats.facts_derived);
  EXPECT_LE(cost_stats.join_probes, greedy_stats.join_probes);
  // The gap is structural (hub fan-out over |sel|), not a rounding
  // artifact: demand a real multiple.
  EXPECT_GE(greedy_stats.join_probes, 2 * cost_stats.join_probes);
  // The planner ran: plans were built and costed. (The serial engine's
  // chaotic rounds converge in so few rounds here that every request is
  // a first build — cache-hit behavior is covered by eval_plan_test's
  // staged-round steady-state case.)
  EXPECT_GT(cost_stats.plans_rebuilt, 0u);
  EXPECT_GT(cost_stats.est_cost_total, 0u);
  EXPECT_EQ(greedy_stats.plans_cached, 0u);
  EXPECT_EQ(greedy_stats.plans_rebuilt, 0u);
}

}  // namespace
}  // namespace datalog
