#include <gtest/gtest.h>

#include "src/containment/unfold.h"
#include "src/cq/containment.h"
#include "src/engine/eval.h"
#include "src/engine/random_db.h"
#include "src/generators/examples.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

TEST(UnfoldTest, SingleRuleProgram) {
  Program p = MustParseProgram("q(X) :- e(X, Y), f(Y).");
  StatusOr<UnionOfCqs> ucq = UnfoldNonrecursive(p, "q");
  ASSERT_TRUE(ucq.ok()) << ucq.status();
  ASSERT_EQ(ucq->size(), 1u);
  EXPECT_EQ(ucq->disjuncts()[0].body().size(), 2u);
}

TEST(UnfoldTest, TwoLayerComposition) {
  Program p = MustParseProgram(R"(
    top(X, Y) :- mid(X, Z), mid(Z, Y).
    mid(X, Y) :- e(X, Y).
    mid(X, Y) :- f(X, Y).
  )");
  StatusOr<UnionOfCqs> ucq = UnfoldNonrecursive(p, "top");
  ASSERT_TRUE(ucq.ok());
  // 2 choices for each of the two mid atoms.
  EXPECT_EQ(ucq->size(), 4u);
  for (const ConjunctiveQuery& cq : ucq->disjuncts()) {
    EXPECT_EQ(cq.body().size(), 2u);
  }
}

TEST(UnfoldTest, RejectsRecursivePrograms) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  EXPECT_FALSE(UnfoldNonrecursive(tc, "p").ok());
  EXPECT_FALSE(EstimateUnfoldSize(tc, "p").ok());
}

TEST(UnfoldTest, UnfoldingEquivalentToProgramOnRandomDatabases) {
  Program p = MustParseProgram(R"(
    top(X, Y) :- mid(X, Z), mid(Z, Y).
    top(X, Y) :- e(X, Y).
    mid(X, Y) :- e(X, Y), g(X).
    mid(X, Y) :- f(X, Y).
  )");
  StatusOr<UnionOfCqs> ucq = UnfoldNonrecursive(p, "top");
  ASSERT_TRUE(ucq.ok());
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RandomDbOptions options;
    options.seed = seed;
    options.domain_size = 4;
    options.tuples_per_relation = 6;
    Database db = RandomDatabaseFor(p, options);
    StatusOr<Relation> via_program = EvaluateGoal(p, "top", db);
    StatusOr<Relation> via_ucq = EvaluateUcq(*ucq, db);
    ASSERT_TRUE(via_program.ok());
    ASSERT_TRUE(via_ucq.ok());
    EXPECT_EQ(*via_program, *via_ucq) << "seed " << seed;
  }
}

TEST(UnfoldTest, HeadConstantsAndRepeatedVariablesCompose) {
  Program p = MustParseProgram(R"(
    q(X) :- base(X, X).
    base(X, Y) :- e(X, Y).
    base(a, Y) :- f(Y).
  )");
  StatusOr<UnionOfCqs> ucq = UnfoldNonrecursive(p, "q");
  ASSERT_TRUE(ucq.ok());
  ASSERT_EQ(ucq->size(), 2u);
  // Second disjunct: base(a, Y) unified with base(X, X) forces X = a = Y.
  bool found_constant_head = false;
  for (const ConjunctiveQuery& cq : ucq->disjuncts()) {
    if (cq.head_args()[0] == Term::Constant("a")) {
      found_constant_head = true;
      EXPECT_EQ(cq.body()[0], MustParseAtom("f(a)"));
    }
  }
  EXPECT_TRUE(found_constant_head);
}

TEST(UnfoldTest, IncompatibleConstantsPruneDisjuncts) {
  Program p = MustParseProgram(R"(
    q(X) :- base(b, X).
    base(a, Y) :- f(Y).
    base(b, Y) :- g(Y).
  )");
  StatusOr<UnionOfCqs> ucq = UnfoldNonrecursive(p, "q");
  ASSERT_TRUE(ucq.ok());
  ASSERT_EQ(ucq->size(), 1u);
  EXPECT_EQ(ucq->disjuncts()[0].body()[0].predicate(), "g");
}

TEST(UnfoldTest, EmptyBodyRulesCompose) {
  // Example 6.2 style: dist<0(x, x) :- .
  Program p = MustParseProgram(R"(
    q(X, Y) :- d(X, Z), e(Z, Y).
    d(X, X) :- .
    d(X, Y) :- f(X, Y).
  )");
  StatusOr<UnionOfCqs> ucq = UnfoldNonrecursive(p, "q");
  ASSERT_TRUE(ucq.ok());
  ASSERT_EQ(ucq->size(), 2u);
  // The empty-body disjunct collapses X and Z: body e(X, Y).
  bool found_collapsed = false;
  for (const ConjunctiveQuery& cq : ucq->disjuncts()) {
    if (cq.body().size() == 1 && cq.body()[0].predicate() == "e") {
      found_collapsed = true;
      EXPECT_EQ(cq.body()[0].args()[0], cq.head_args()[0]);
    }
  }
  EXPECT_TRUE(found_collapsed);
}

TEST(UnfoldTest, PaperExample61DistExponentialAtoms) {
  // dist_n unfolds to a single CQ with 2^n atoms (Example 6.1).
  for (int n = 1; n <= 6; ++n) {
    Program p = DistProgram(n);
    StatusOr<UnionOfCqs> ucq = UnfoldNonrecursive(p, DistPredicate(n));
    ASSERT_TRUE(ucq.ok()) << ucq.status();
    ASSERT_EQ(ucq->size(), 1u);
    EXPECT_EQ(ucq->disjuncts()[0].body().size(),
              static_cast<std::size_t>(1) << n);
    StatusOr<UnfoldSizeEstimate> estimate =
        EstimateUnfoldSize(p, DistPredicate(n));
    ASSERT_TRUE(estimate.ok());
    EXPECT_EQ(estimate->disjuncts, 1u);
    EXPECT_EQ(estimate->max_disjunct_atoms, std::uint64_t{1} << n);
  }
}

TEST(UnfoldTest, PaperExample66WordExponentialDisjuncts) {
  // word_n unfolds to 2^n disjuncts, each of size O(n) (Example 6.6).
  for (int n = 1; n <= 6; ++n) {
    Program p = WordProgram(n);
    StatusOr<UnionOfCqs> ucq = UnfoldNonrecursive(p, WordPredicate(n));
    ASSERT_TRUE(ucq.ok()) << ucq.status();
    EXPECT_EQ(ucq->size(), static_cast<std::size_t>(1) << n);
    for (const ConjunctiveQuery& cq : ucq->disjuncts()) {
      EXPECT_EQ(cq.body().size(), static_cast<std::size_t>(2 * n));
    }
  }
}

TEST(UnfoldTest, EstimateMatchesMaterializedSizes) {
  Program p = MustParseProgram(R"(
    top(X) :- a(X, Y), m1(Y), m2(Y).
    m1(X) :- e(X).
    m1(X) :- f(X), g(X).
    m2(X) :- h(X).
    m2(X) :- e(X).
  )");
  StatusOr<UnionOfCqs> ucq = UnfoldNonrecursive(p, "top");
  StatusOr<UnfoldSizeEstimate> estimate = EstimateUnfoldSize(p, "top");
  ASSERT_TRUE(ucq.ok());
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->disjuncts, ucq->size());
  std::size_t max_atoms = 0;
  for (const ConjunctiveQuery& cq : ucq->disjuncts()) {
    max_atoms = std::max(max_atoms, cq.body().size());
  }
  EXPECT_EQ(estimate->max_disjunct_atoms, max_atoms);
}

TEST(UnfoldTest, DisjunctLimitEnforced) {
  Program p = WordProgram(10);  // 1024 disjuncts
  UnfoldOptions options;
  options.max_disjuncts = 100;
  StatusOr<UnionOfCqs> ucq =
      UnfoldNonrecursive(p, WordPredicate(10), options);
  ASSERT_FALSE(ucq.ok());
  EXPECT_EQ(ucq.status().code(), StatusCode::kResourceExhausted);
}

TEST(UnfoldTest, MinimizeShrinksRedundantUnfoldings) {
  Program p = MustParseProgram(R"(
    top(X) :- m(X), m(X).
    m(X) :- e(X, Y).
  )");
  UnfoldOptions plain;
  UnfoldOptions minimizing;
  minimizing.minimize = true;
  StatusOr<UnionOfCqs> big = UnfoldNonrecursive(p, "top", plain);
  StatusOr<UnionOfCqs> small = UnfoldNonrecursive(p, "top", minimizing);
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(big->disjuncts()[0].body().size(), 2u);
  EXPECT_EQ(small->disjuncts()[0].body().size(), 1u);
  EXPECT_TRUE(IsUcqEquivalent(*big, *small));
}

}  // namespace
}  // namespace datalog
