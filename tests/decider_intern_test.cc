// Differential testing of the decider's memoization substrates: on
// program families crossed with randomized unions of bounded expansions,
// the IR path (dense TermId pinned images, renamed-set memo) and the
// interned path (dense goal/instance ids, flat integer memo rows, but
// Term-based achieved sets) must return byte-identical
// ContainmentDecisions — verdict, counterexample witness tree, and state
// counts — to the string-keyed baseline both replaced, with and without
// antichain pruning. The CQ-layer homomorphism search gets the same
// treatment: IR and string substrates must find identical containment
// mappings and minimization outputs. Also pins the 64-atom mask-overflow
// guard: a disjunct too wide for the 64-bit atom masks must be rejected
// with InvalidArgumentError up front, never reaching the
// `1 << atom_index` shifts in absorb.cc.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "src/containment/decider.h"
#include "src/containment/linear.h"
#include "src/containment/ptrees_automaton.h"
#include "src/containment/query_analysis.h"
#include "src/cq/containment.h"
#include "src/cq/minimize.h"
#include "src/generators/examples.h"
#include "src/ir/ir.h"
#include "src/trees/enumerate.h"
#include "src/util/strings.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

struct DeciderCase {
  std::string name;
  Program program;
  std::string goal;
  UnionOfCqs theta;
};

void ExpectSameDecision(const ContainmentDecision& interned,
                        const ContainmentDecision& string_keyed,
                        const std::string& label) {
  EXPECT_EQ(interned.contained, string_keyed.contained) << label;
  ASSERT_EQ(interned.counterexample.has_value(),
            string_keyed.counterexample.has_value())
      << label;
  if (interned.counterexample.has_value()) {
    EXPECT_EQ(interned.counterexample->ToString(),
              string_keyed.counterexample->ToString())
        << label;
  }
  EXPECT_EQ(interned.stats.states_discovered,
            string_keyed.stats.states_discovered)
      << label;
  EXPECT_EQ(interned.stats.goals_discovered,
            string_keyed.stats.goals_discovered)
      << label;
  EXPECT_EQ(interned.stats.rounds, string_keyed.stats.rounds) << label;
}

void RunDifferential(const DeciderCase& c) {
  for (bool antichain : {true, false}) {
    ContainmentOptions ir;
    ir.use_ir = true;
    ir.antichain = antichain;
    ContainmentOptions interned;
    interned.use_ir = false;
    interned.intern_memo = true;
    interned.antichain = antichain;
    ContainmentOptions string_keyed;
    string_keyed.use_ir = false;
    string_keyed.intern_memo = false;
    string_keyed.antichain = antichain;
    StatusOr<ContainmentDecision> a =
        DecideDatalogInUcq(c.program, c.goal, c.theta, ir);
    StatusOr<ContainmentDecision> b =
        DecideDatalogInUcq(c.program, c.goal, c.theta, interned);
    StatusOr<ContainmentDecision> d =
        DecideDatalogInUcq(c.program, c.goal, c.theta, string_keyed);
    ASSERT_EQ(a.ok(), d.ok()) << c.name;
    ASSERT_EQ(b.ok(), d.ok()) << c.name;
    if (!d.ok()) {
      EXPECT_EQ(a.status().code(), d.status().code()) << c.name;
      EXPECT_EQ(b.status().code(), d.status().code()) << c.name;
      continue;
    }
    ExpectSameDecision(
        *a, *d, StrCat(c.name, " ir-vs-string antichain=", antichain ? 1 : 0));
    ExpectSameDecision(
        *b, *d,
        StrCat(c.name, " interned-vs-string antichain=", antichain ? 1 : 0));
  }
}

std::vector<DeciderCase> FixedCases() {
  std::vector<DeciderCase> cases;
  {
    UnionOfCqs theta;
    theta.Add(MustParseCq("buys(X, Y) :- likes(X, Y)."));
    theta.Add(MustParseCq("buys(X, Y) :- trendy(X), likes(Z, Y)."));
    cases.push_back({"buys1_rewriting", Buys1Program(), "buys", theta});
  }
  {
    UnionOfCqs theta;
    theta.Add(MustParseCq("buys(X, Y) :- likes(X, Y)."));
    theta.Add(MustParseCq("buys(X, Y) :- knows(X, Z), likes(Z, Y)."));
    cases.push_back({"buys2_attempt", Buys2Program(), "buys", theta});
  }
  {
    cases.push_back({"tc_paths3", TransitiveClosureProgram("e", "e"), "p",
                     PathQueries(3)});
  }
  {
    UnionOfCqs top;
    top.Add(MustParseCq("p(X, Y) :- ."));
    cases.push_back(
        {"tc_top", TransitiveClosureProgram("e", "e"), "p", top});
  }
  {
    UnionOfCqs diagonal;
    diagonal.Add(MustParseCq("p(X, X) :- ."));
    cases.push_back({"tc_diagonal", TransitiveClosureProgram("e", "e"), "p",
                     diagonal});
  }
  {
    cases.push_back({"nonlinear_tc_paths2",
                     NonlinearTransitiveClosureProgram(), "p",
                     PathQueries(2)});
  }
  {
    cases.push_back({"chain2_paths4", ChainProgram(2), "p", PathQueries(4)});
  }
  {
    UnionOfCqs empty;
    cases.push_back(
        {"tc_empty_union", TransitiveClosureProgram("e", "e"), "p", empty});
  }
  {
    Program mutual = MustParseProgram(R"(
      even(X) :- zero(X).
      even(X) :- succ(Y, X), odd(Y).
      odd(X) :- succ(Y, X), even(Y).
    )");
    UnionOfCqs exactly_one;
    exactly_one.Add(MustParseCq("odd(X) :- succ(Y, X), zero(Y)."));
    cases.push_back({"mutual_exactly_one", mutual, "odd", exactly_one});
  }
  {
    Program reach = MustParseProgram(R"(
      r(X) :- e(root, X).
      r(X) :- r(Y), e(Y, X).
    )");
    UnionOfCqs from_root;
    from_root.Add(MustParseCq("r(X) :- e(root, X)."));
    cases.push_back({"constants_from_root", reach, "r", from_root});
  }
  {
    Program loops = MustParseProgram(R"(
      l(X, X) :- e(X, X).
      l(X, Y) :- e(X, Z), l(Z, Y).
    )");
    UnionOfCqs ends_in_loop;
    ends_in_loop.Add(MustParseCq("l(X, Y) :- e(Y, Y)."));
    cases.push_back({"repeated_head_vars", loops, "l", ends_in_loop});
  }
  return cases;
}

TEST(DeciderInternTest, FixedCasesAgreeWithStringKeyedBaseline) {
  for (const DeciderCase& c : FixedCases()) RunDifferential(c);
}

// Randomized pairs: each seed picks a program family and a random subset
// of its bounded expansions as Θ (sometimes topped up with the universal
// CQ), producing a mix of contained and non-contained instances.
class DeciderInternRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DeciderInternRandomTest, RandomizedExpansionSubsetsAgree) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  std::mt19937_64 rng(seed * 7919 + 1);
  struct Family {
    std::string name;
    Program program;
    std::string goal;
  };
  std::vector<Family> families;
  families.push_back({"buys1", Buys1Program(), "buys"});
  families.push_back({"buys2", Buys2Program(), "buys"});
  families.push_back({"tc", TransitiveClosureProgram("e", "e"), "p"});
  families.push_back({"tc_nl", NonlinearTransitiveClosureProgram(), "p"});
  families.push_back({"chain2", ChainProgram(2), "p"});
  const Family& family = families[seed % families.size()];
  EnumerateOptions enumerate;
  enumerate.max_depth = 1 + static_cast<std::size_t>(rng() % 3);
  enumerate.max_trees = 200;
  UnionOfCqs expansions =
      BoundedExpansions(family.program, family.goal, enumerate);
  UnionOfCqs theta;
  for (const ConjunctiveQuery& disjunct : expansions.disjuncts()) {
    if (rng() % 2 == 0) theta.Add(disjunct);
    if (theta.size() >= 6) break;  // keep the decider input small
  }
  if (rng() % 4 == 0) {
    std::vector<Term> head;
    for (std::size_t i = 0; i < family.program.PredicateArity(family.goal);
         ++i) {
      head.push_back(Term::Variable(StrCat("T", i)));
    }
    theta.Add(ConjunctiveQuery(std::move(head), {}));  // universal CQ
  }
  DeciderCase c{StrCat(family.name, "_seed", seed), family.program,
                family.goal, theta};
  RunDifferential(c);
}

INSTANTIATE_TEST_SUITE_P(RandomThetas, DeciderInternRandomTest,
                         ::testing::Range(0, 20));

// A reused checker must behave exactly like a fresh decider per Θ, in
// particular when an early-stopped run (counterexample found before the
// instance enumeration finished) leaves a partially built instance cache
// behind for the next Decide call to resume.
TEST(DeciderInternTest, CheckerReuseAcrossThetasMatchesFreshDeciders) {
  Program tc = TransitiveClosureProgram("e", "e");
  ContainmentChecker checker(tc, "p");
  std::vector<UnionOfCqs> thetas;
  thetas.emplace_back();  // empty union: early stop on the first root state
  thetas.push_back(PathQueries(2));
  {
    UnionOfCqs top;
    top.Add(MustParseCq("p(X, Y) :- ."));
    thetas.push_back(top);
  }
  thetas.push_back(PathQueries(3));
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    StatusOr<ContainmentDecision> reused = checker.Decide(thetas[i]);
    StatusOr<ContainmentDecision> fresh =
        DecideDatalogInUcq(tc, "p", thetas[i]);
    ASSERT_TRUE(reused.ok()) << reused.status();
    ASSERT_TRUE(fresh.ok()) << fresh.status();
    ExpectSameDecision(*reused, *fresh, StrCat("theta ", i));
  }
}

TEST(DeciderInternTest, InternedPathReportsMemoAndCacheCounters) {
  Program tc = TransitiveClosureProgram("e", "e");
  ContainmentOptions options;
  options.use_ir = false;
  options.intern_memo = true;
  StatusOr<ContainmentDecision> decision =
      DecideDatalogInUcq(tc, "p", PathQueries(2), options);
  ASSERT_TRUE(decision.ok());
  EXPECT_GT(decision->stats.instances_cached, 0u);
  EXPECT_GT(decision->stats.subset_checks, 0u);
  // Non-IR arms never touch the rename memo or the integer pin compares.
  EXPECT_EQ(decision->stats.rename_memo_hits, 0u);
  EXPECT_EQ(decision->stats.pinned_compares, 0u);
  options.intern_memo = false;
  StatusOr<ContainmentDecision> baseline =
      DecideDatalogInUcq(tc, "p", PathQueries(2), options);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->stats.instances_cached, 0u);
}

TEST(DeciderInternTest, IrPathReportsRenameMemoAndPinnedCompareCounters) {
  // A nonlinear program: combination products have two child slots, so
  // the same (instance, child, serial) rename is requested repeatedly and
  // the memo must serve the repeats.
  Program nl = NonlinearTransitiveClosureProgram();
  UnionOfCqs theta = PathQueries(2);
  theta.Add(ConjunctiveQuery({Term::Variable("X"), Term::Variable("Y")}, {}));
  ContainmentOptions options;
  options.use_ir = true;
  StatusOr<ContainmentDecision> decision =
      DecideDatalogInUcq(nl, "p", theta, options);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->contained);
  EXPECT_GT(decision->stats.rename_memo_hits, 0u);
  EXPECT_GT(decision->stats.pinned_compares, 0u);
  EXPECT_GT(decision->stats.instances_cached, 0u);
}

// --- carried-IR reuse: Decide / minimize / Decide re-interns nothing --

TEST(DeciderInternTest, CarriedIrIsReusedAcrossDecideCalls) {
  Program tc = TransitiveClosureProgram("e", "e");
  EXPECT_FALSE(tc.has_carried_ir());
  UnionOfCqs theta = PathQueries(2);
  StatusOr<ContainmentDecision> first = DecideDatalogInUcq(tc, "p", theta);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->stats.program_ir_builds, 1u);
  EXPECT_TRUE(tc.has_carried_ir());
  // Decide → minimize → Decide: the second Decide against the same
  // (unmutated) Program pays zero interning passes.
  UnionOfCqs minimized = MinimizeUcq(theta);
  StatusOr<ContainmentDecision> second =
      DecideDatalogInUcq(tc, "p", minimized);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.program_ir_builds, 0u);
  EXPECT_EQ(first->contained, second->contained);
  // Mutation invalidates: the next Decide re-interns exactly once.
  tc.AddRule(MustParseRule("p(X, Y) :- f(X, Y)."));
  EXPECT_FALSE(tc.has_carried_ir());
  StatusOr<ContainmentDecision> third = DecideDatalogInUcq(tc, "p", theta);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->stats.program_ir_builds, 1u);
}

TEST(DeciderInternTest, CheckerChargesInterningToFirstDecideOnly) {
  Program tc = TransitiveClosureProgram("e", "e");
  ContainmentChecker checker(tc, "p");
  StatusOr<ContainmentDecision> first = checker.Decide(PathQueries(2));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->stats.program_ir_builds, 1u);
  StatusOr<ContainmentDecision> second = checker.Decide(PathQueries(3));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.program_ir_builds, 0u);
}

// --- explicit-automata differentials: ptrees + linear word automata ----

TEST(PtreesIrDifferentialTest, AlphabetsAndAutomataAgreeAcrossArms) {
  std::vector<Program> programs;
  programs.push_back(TransitiveClosureProgram("e", "e0"));
  programs.push_back(Buys1Program());
  programs.push_back(MustParseProgram(R"(
    r(X) :- e(root, X).
    r(X) :- r(Y), e(Y, X).
  )"));
  for (std::size_t p = 0; p < programs.size(); ++p) {
    const std::string goal =
        programs[p].rules().front().head().predicate();
    StatusOr<PtreesAutomaton> ir_arm =
        BuildPtreesAutomaton(programs[p], goal, ExecutionLimits(), /*use_ir=*/true);
    StatusOr<PtreesAutomaton> string_arm =
        BuildPtreesAutomaton(programs[p], goal, ExecutionLimits(), /*use_ir=*/false);
    ASSERT_TRUE(ir_arm.ok() && string_arm.ok()) << "program " << p;
    // Identical alphabets: same symbols in the same order.
    ASSERT_EQ(ir_arm->alphabet.num_labels(),
              string_arm->alphabet.num_labels())
        << "program " << p;
    for (std::size_t s = 0; s < ir_arm->alphabet.num_labels(); ++s) {
      EXPECT_EQ(ir_arm->alphabet.Label(s).ToString(),
                string_arm->alphabet.Label(s).ToString());
      EXPECT_EQ(ir_arm->alphabet.label_idb_positions[s],
                string_arm->alphabet.label_idb_positions[s]);
      EXPECT_EQ(ir_arm->alphabet.arities[s], string_arm->alphabet.arities[s]);
      // Both SymbolOf implementations resolve every label.
      EXPECT_EQ(
          ir_arm->alphabet.SymbolOf(ir_arm->alphabet.Label(s)),
          static_cast<int>(s));
      EXPECT_EQ(
          string_arm->alphabet.SymbolOf(string_arm->alphabet.Label(s)),
          static_cast<int>(s));
    }
    // Identical automata: same states (same atoms in the same order,
    // resolved identically by StateOf) and the same acceptance behavior
    // on a sample of arbitrary labeled trees.
    ASSERT_EQ(ir_arm->nfta.num_states(), string_arm->nfta.num_states())
        << "program " << p;
    ASSERT_EQ(ir_arm->num_states(), string_arm->num_states());
    for (std::size_t s = 0; s < ir_arm->num_states(); ++s) {
      EXPECT_EQ(ir_arm->StateAtom(s).ToString(),
                string_arm->StateAtom(s).ToString());
      EXPECT_EQ(ir_arm->StateOf(ir_arm->StateAtom(s)),
                static_cast<int>(s));
      EXPECT_EQ(string_arm->StateOf(ir_arm->StateAtom(s)),
                static_cast<int>(s));
    }
    std::size_t checked = 0;
    EnumerateLabeledTrees(
        ir_arm->alphabet.arities, 2, 1500, [&](const LabeledTree& tree) {
          EXPECT_EQ(ir_arm->nfta.Accepts(tree),
                    string_arm->nfta.Accepts(tree));
          ++checked;
          return true;
        });
    EXPECT_GT(checked, 50u) << "program " << p;
  }
}

TEST(PtreesIrDifferentialTest, LabelLimitAgreesAcrossArms) {
  Program tc = TransitiveClosureProgram("e", "e0");
  for (bool use_ir : {true, false}) {
    StatusOr<ProgramAlphabet> alphabet =
        BuildProgramAlphabet(tc, ExecutionLimits().WithMaxLabels(10), use_ir);
    ASSERT_FALSE(alphabet.ok());
    EXPECT_EQ(alphabet.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(LinearIrDifferentialTest, WordAutomatonArmsAgree) {
  struct Case {
    std::string name;
    Program program;
    std::string goal;
    UnionOfCqs theta;
  };
  std::vector<Case> cases;
  {
    UnionOfCqs t1;
    t1.Add(MustParseCq("buys(X, Y) :- likes(X, Y)."));
    t1.Add(MustParseCq("buys(X, Y) :- trendy(X), likes(Z, Y)."));
    cases.push_back({"buys1", Buys1Program(), "buys", t1});
    UnionOfCqs t2;
    t2.Add(MustParseCq("buys(X, Y) :- likes(X, Y)."));
    t2.Add(MustParseCq("buys(X, Y) :- knows(X, Z), likes(Z, Y)."));
    cases.push_back({"buys2", Buys2Program(), "buys", t2});
  }
  {
    Program tc = TransitiveClosureProgram("e", "e");
    cases.push_back({"tc_paths", tc, "p", PathQueries(3)});
    UnionOfCqs top;
    top.Add(MustParseCq("p(X, Y) :- ."));
    cases.push_back({"tc_top", tc, "p", top});
    UnionOfCqs diag;
    diag.Add(MustParseCq("p(X, X) :- ."));
    cases.push_back({"tc_diag", tc, "p", diag});
    cases.push_back({"tc_empty", tc, "p", UnionOfCqs()});
  }
  {
    Program reach = MustParseProgram(R"(
      r(X) :- e(root, X).
      r(X) :- r(Y), e(Y, X).
    )");
    UnionOfCqs from_root;
    from_root.Add(MustParseCq("r(X) :- e(root, X)."));
    cases.push_back({"constants", reach, "r", from_root});
  }
  cases.push_back({"chain2", ChainProgram(2), "p", PathQueries(4)});
  for (const Case& c : cases) {
    LinearContainmentOptions ir_arm;
    ir_arm.use_ir = true;
    LinearContainmentOptions string_arm;
    string_arm.use_ir = false;
    StatusOr<LinearContainmentResult> a =
        DecideLinearDatalogInUcq(c.program, c.goal, c.theta, ir_arm);
    StatusOr<LinearContainmentResult> b =
        DecideLinearDatalogInUcq(c.program, c.goal, c.theta, string_arm);
    ASSERT_EQ(a.ok(), b.ok()) << c.name;
    if (!a.ok()) continue;
    EXPECT_EQ(a->contained, b->contained) << c.name;
    EXPECT_EQ(a->alphabet_size, b->alphabet_size) << c.name;
    EXPECT_EQ(a->ptrees_states, b->ptrees_states) << c.name;
    EXPECT_EQ(a->theta_states, b->theta_states) << c.name;
    EXPECT_EQ(a->pairs_explored, b->pairs_explored) << c.name;
    ASSERT_EQ(a->counterexample.has_value(), b->counterexample.has_value())
        << c.name;
    if (a->counterexample.has_value()) {
      EXPECT_EQ(a->counterexample->ToString(), b->counterexample->ToString())
          << c.name;
    }
  }
}

TEST(LinearIrDifferentialTest, RandomizedExpansionSubsetsAgree) {
  // Randomized Θs over linear families, mirroring the decider's
  // randomized differential: the two word-automaton arms must return
  // byte-identical results on every seed.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    std::mt19937_64 rng(seed * 2654435761u + 13);
    std::vector<std::pair<Program, std::string>> families;
    families.push_back({Buys1Program(), "buys"});
    families.push_back({TransitiveClosureProgram("e", "e"), "p"});
    families.push_back({ChainProgram(2), "p"});
    const auto& [program, goal] = families[seed % families.size()];
    EnumerateOptions enumerate;
    enumerate.max_depth = 1 + static_cast<std::size_t>(rng() % 2);
    enumerate.max_trees = 100;
    UnionOfCqs expansions = BoundedExpansions(program, goal, enumerate);
    UnionOfCqs theta;
    for (const ConjunctiveQuery& disjunct : expansions.disjuncts()) {
      if (rng() % 2 == 0) theta.Add(disjunct);
      if (theta.size() >= 4) break;
    }
    LinearContainmentOptions ir_arm;
    ir_arm.use_ir = true;
    LinearContainmentOptions string_arm;
    string_arm.use_ir = false;
    StatusOr<LinearContainmentResult> a =
        DecideLinearDatalogInUcq(program, goal, theta, ir_arm);
    StatusOr<LinearContainmentResult> b =
        DecideLinearDatalogInUcq(program, goal, theta, string_arm);
    ASSERT_EQ(a.ok(), b.ok()) << "seed " << seed;
    if (!a.ok()) continue;
    EXPECT_EQ(a->contained, b->contained) << "seed " << seed;
    EXPECT_EQ(a->theta_states, b->theta_states) << "seed " << seed;
    ASSERT_EQ(a->counterexample.has_value(), b->counterexample.has_value())
        << "seed " << seed;
    if (a->counterexample.has_value()) {
      EXPECT_EQ(a->counterexample->ToString(), b->counterexample->ToString())
          << "seed " << seed;
    }
  }
}

// --- CQ-layer differential: IR vs string homomorphism search ----------

void ExpectSameMapping(const ConjunctiveQuery& psi,
                       const ConjunctiveQuery& theta,
                       const std::string& label) {
  CqMappingOptions ir;
  ir.use_ir = true;
  CqMappingOptions strings;
  strings.use_ir = false;
  std::optional<Substitution> a = FindContainmentMapping(psi, theta, ir);
  std::optional<Substitution> b = FindContainmentMapping(psi, theta, strings);
  ASSERT_EQ(a.has_value(), b.has_value()) << label;
  if (a.has_value()) {
    EXPECT_EQ(*a, *b) << label;  // identical mapping, entry for entry
  }
}

TEST(CqIrDifferentialTest, RandomizedExpansionPairsAgree) {
  struct Family {
    Program program;
    std::string goal;
  };
  std::vector<Family> families;
  families.push_back({Buys1Program(), "buys"});
  families.push_back({TransitiveClosureProgram("e", "e"), "p"});
  families.push_back({NonlinearTransitiveClosureProgram(), "p"});
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    std::mt19937_64 rng(seed * 104729 + 7);
    const Family& family = families[seed % families.size()];
    EnumerateOptions enumerate;
    enumerate.max_depth = 1 + static_cast<std::size_t>(rng() % 3);
    enumerate.max_trees = 60;
    UnionOfCqs expansions =
        BoundedExpansions(family.program, family.goal, enumerate);
    const std::vector<ConjunctiveQuery>& cqs = expansions.disjuncts();
    if (cqs.size() < 2) continue;
    for (int pair = 0; pair < 8; ++pair) {
      const ConjunctiveQuery& psi = cqs[rng() % cqs.size()];
      const ConjunctiveQuery& theta = cqs[rng() % cqs.size()];
      ExpectSameMapping(psi, theta, StrCat("seed ", seed, " pair ", pair));
    }
    // Minimization and redundant-disjunct removal must also be
    // byte-identical across substrates.
    CqMappingOptions ir;
    ir.use_ir = true;
    CqMappingOptions strings;
    strings.use_ir = false;
    for (const ConjunctiveQuery& cq : cqs) {
      EXPECT_EQ(MinimizeCq(cq, ir).ToString(),
                MinimizeCq(cq, strings).ToString())
          << "seed " << seed;
    }
    EXPECT_EQ(MinimizeUcq(expansions, ir).ToString(),
              MinimizeUcq(expansions, strings).ToString())
        << "seed " << seed;
    EXPECT_EQ(RemoveRedundantDisjuncts(expansions, ir).ToString(),
              RemoveRedundantDisjuncts(expansions, strings).ToString())
        << "seed " << seed;
    EXPECT_EQ(IsUcqContained(expansions, expansions, ir),
              IsUcqContained(expansions, expansions, strings))
        << "seed " << seed;
  }
}

TEST(CqIrDifferentialTest, ConstantsAndRepeatedHeadVarsAgree) {
  // Hand-picked shapes that stress the encoding edges: constants in
  // bodies and heads, repeated head variables, and empty bodies.
  std::vector<std::pair<std::string, std::string>> cases = {
      {"q(X, Y) :- e(X, Z), e(Z, Y).", "q(X, Y) :- e(X, Z), e(Z, W), e(W, Y)."},
      {"q(X) :- e(root, X).", "q(X) :- e(root, X), e(X, X)."},
      {"q(X, X) :- e(X, X).", "q(X, Y) :- e(X, Y)."},
      {"q(X, Y) :- .", "q(X, Y) :- e(X, Y)."},
      {"q(a, X) :- e(a, X).", "q(a, X) :- e(a, X), e(X, a)."},
  };
  for (const auto& [psi_text, theta_text] : cases) {
    ConjunctiveQuery psi = MustParseCq(psi_text);
    ConjunctiveQuery theta = MustParseCq(theta_text);
    ExpectSameMapping(psi, theta, psi_text);
    ExpectSameMapping(theta, psi, theta_text);
  }
}

// --- the 64-atom mask-overflow guard ---------------------------------

ConjunctiveQuery WideDisjunct(std::size_t atoms) {
  std::vector<Atom> body;
  for (std::size_t i = 0; i < atoms; ++i) {
    body.push_back(Atom("e", {Term::Variable(StrCat("V", i)),
                              Term::Variable(StrCat("V", i + 1))}));
  }
  return ConjunctiveQuery(
      {Term::Variable("V0"), Term::Variable(StrCat("V", atoms))},
      std::move(body));
}

TEST(DeciderInternTest, SixtyFiveAtomDisjunctIsRejectedNotUndefined) {
  // 65 atoms would shift `uint64_t{1} << 64` in absorb.cc if it ever got
  // that far; the analysis layer must reject it cleanly instead.
  StatusOr<QueryAnalysis> analysis = AnalyzeQuery(WideDisjunct(65));
  ASSERT_FALSE(analysis.ok());
  EXPECT_EQ(analysis.status().code(), StatusCode::kInvalidArgument);

  Program tc = TransitiveClosureProgram("e", "e");
  UnionOfCqs theta;
  theta.Add(MustParseCq("p(X, Y) :- e(X, Y)."));
  theta.Add(WideDisjunct(65));
  StatusOr<ContainmentDecision> decision =
      DecideDatalogInUcq(tc, "p", theta);
  ASSERT_FALSE(decision.ok());
  EXPECT_EQ(decision.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeciderInternTest, MaxWidthDisjunctIsStillAnalyzable) {
  // The analysis keeps a pointer to the CQ, so it must outlive it.
  ConjunctiveQuery widest = WideDisjunct(kMaxDisjunctAtoms);
  StatusOr<QueryAnalysis> analysis = AnalyzeQuery(widest);
  ASSERT_TRUE(analysis.ok()) << analysis.status();
  EXPECT_EQ(analysis->cq->body().size(), kMaxDisjunctAtoms);
  StatusOr<QueryAnalysis> too_wide =
      AnalyzeQuery(WideDisjunct(kMaxDisjunctAtoms + 1));
  EXPECT_FALSE(too_wide.ok());
}

}  // namespace
}  // namespace datalog
