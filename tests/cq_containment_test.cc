#include <gtest/gtest.h>

#include "src/cq/containment.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

// Convention reminder (paper Theorem 2.2): theta ⊆ psi iff there is a
// containment mapping FROM psi TO theta.

TEST(ContainmentMappingTest, IdentityMappingExists) {
  ConjunctiveQuery cq = MustParseCq("q(X, Y) :- e(X, Z), e(Z, Y).");
  EXPECT_TRUE(FindContainmentMapping(cq, cq).has_value());
}

TEST(ContainmentMappingTest, PathLength2IntoPathLength4) {
  // Path of length 4 from X to Y is contained in "exists a path of length
  // 2 from X to some Z"? No - heads differ. Use the classic: every path of
  // length 2 (theta) is a path of length... test: psi = exists path of
  // length 1 from X: q(X) :- e(X, W). theta = q(X) :- e(X, A), e(A, B).
  ConjunctiveQuery psi = MustParseCq("q(X) :- e(X, W).");
  ConjunctiveQuery theta = MustParseCq("q(X) :- e(X, A), e(A, B).");
  // theta ⊆ psi: a length-2 path starting at X has a length-1 path at X.
  EXPECT_TRUE(IsCqContained(theta, psi));
  // psi ⊄ theta.
  EXPECT_FALSE(IsCqContained(psi, theta));
}

TEST(ContainmentMappingTest, DistinguishedVariablesMustMapToThemselves) {
  ConjunctiveQuery psi = MustParseCq("q(X, Y) :- e(X, Y).");
  ConjunctiveQuery theta = MustParseCq("q(X, Y) :- e(Y, X).");
  // The mapping would need X -> Y, violating head preservation.
  EXPECT_FALSE(IsCqContained(theta, psi));
}

TEST(ContainmentMappingTest, CycleIntoSelfLoop) {
  // A self-loop satisfies every cycle query: cycle2 ⊇ loop.
  ConjunctiveQuery loop = MustParseCq("q(X) :- e(X, X).");
  ConjunctiveQuery cycle2 = MustParseCq("q(X) :- e(X, Z), e(Z, X).");
  EXPECT_TRUE(IsCqContained(loop, cycle2));   // loop ⊆ cycle2
  EXPECT_FALSE(IsCqContained(cycle2, loop));  // cycle2 ⊄ loop
}

TEST(ContainmentMappingTest, BooleanQueries) {
  ConjunctiveQuery some_edge = MustParseCq("q :- e(X, Y).");
  ConjunctiveQuery triangle = MustParseCq("q :- e(X, Y), e(Y, Z), e(Z, X).");
  EXPECT_TRUE(IsCqContained(triangle, some_edge));
  EXPECT_FALSE(IsCqContained(some_edge, triangle));
}

TEST(ContainmentMappingTest, ConstantsMustMatchExactly) {
  // Remark 5.14: constants map to themselves.
  ConjunctiveQuery with_const = MustParseCq("q(X) :- e(X, a).");
  ConjunctiveQuery with_other = MustParseCq("q(X) :- e(X, b).");
  ConjunctiveQuery with_var = MustParseCq("q(X) :- e(X, Y).");
  EXPECT_FALSE(IsCqContained(with_const, with_other));
  // e(X, a) ⊆ e(X, Y): map Y -> a.
  EXPECT_TRUE(IsCqContained(with_const, with_var));
  // e(X, Y) ⊄ e(X, a).
  EXPECT_FALSE(IsCqContained(with_var, with_const));
}

TEST(ContainmentMappingTest, ConstantInHead) {
  ConjunctiveQuery c1 = MustParseCq("q(a, X) :- e(X).");
  ConjunctiveQuery c2 = MustParseCq("q(a, X) :- e(X), f(X).");
  ConjunctiveQuery c3 = MustParseCq("q(b, X) :- e(X).");
  EXPECT_TRUE(IsCqContained(c2, c1));
  EXPECT_FALSE(IsCqContained(c1, c2));
  EXPECT_FALSE(IsCqContained(c3, c1));
}

TEST(ContainmentMappingTest, RepeatedHeadVariables) {
  ConjunctiveQuery diag = MustParseCq("q(X, X) :- e(X).");
  ConjunctiveQuery pair = MustParseCq("q(X, Y) :- e(X), e(Y).");
  // diag ⊆ pair: map X->X, Y->X.
  EXPECT_TRUE(IsCqContained(diag, pair));
  // pair ⊄ diag: head (X, Y) cannot become (X, X).
  EXPECT_FALSE(IsCqContained(pair, diag));
}

TEST(ContainmentMappingTest, EmptyBodyIsTop) {
  ConjunctiveQuery top = MustParseCq("q(X, Y) :- .");
  ConjunctiveQuery edge = MustParseCq("q(X, Y) :- e(X, Y).");
  EXPECT_TRUE(IsCqContained(edge, top));
  EXPECT_FALSE(IsCqContained(top, edge));
}

TEST(ContainmentMappingTest, MappingWitnessIsCorrect) {
  ConjunctiveQuery psi = MustParseCq("q(X) :- e(X, Z).");
  ConjunctiveQuery theta = MustParseCq("q(X) :- e(X, a), f(X).");
  auto mapping = FindContainmentMapping(psi, theta);
  ASSERT_TRUE(mapping.has_value());
  // Applying the mapping to psi's body must land inside theta's body.
  ConjunctiveQuery image = ApplySubstitution(*mapping, psi);
  EXPECT_EQ(image.head_args(), theta.head_args());
  for (const Atom& atom : image.body()) {
    bool found = false;
    for (const Atom& target : theta.body()) {
      if (atom == target) found = true;
    }
    EXPECT_TRUE(found) << atom.ToString();
  }
}

TEST(ContainmentMappingTest, RequiresMatchingArity) {
  ConjunctiveQuery unary = MustParseCq("q(X) :- e(X).");
  ConjunctiveQuery binary = MustParseCq("q(X, Y) :- e(X).");
  EXPECT_FALSE(FindContainmentMapping(unary, binary).has_value());
}

TEST(ContainmentMappingTest, HardCaseRequiresBacktracking) {
  // psi's first atom can map two ways; only one extends to a full mapping.
  ConjunctiveQuery psi = MustParseCq("q(X) :- e(X, A), e(A, B), f(B).");
  ConjunctiveQuery theta =
      MustParseCq("q(X) :- e(X, U), e(X, V), e(V, W), f(W).");
  EXPECT_TRUE(IsCqContained(theta, psi));
}

TEST(UcqContainmentTest, SagivYannakakisPerDisjunct) {
  // Phi = {e-path-2} ∪ {f-edge}; Psi = {e-path-1} ∪ {f-edge}.
  UnionOfCqs phi;
  phi.Add(MustParseCq("q(X) :- e(X, A), e(A, B)."));
  phi.Add(MustParseCq("q(X) :- f(X, A)."));
  UnionOfCqs psi;
  psi.Add(MustParseCq("q(X) :- e(X, A)."));
  psi.Add(MustParseCq("q(X) :- f(X, A)."));
  EXPECT_TRUE(IsUcqContained(phi, psi));
  EXPECT_FALSE(IsUcqContained(psi, phi));
  EXPECT_FALSE(IsUcqEquivalent(phi, psi));
}

TEST(UcqContainmentTest, EachDisjunctNeedsOneTarget) {
  // phi disjunct contained in the union but in no single disjunct:
  // for UCQs without constants this cannot happen (SY81), so containment
  // must fail when no single disjunct covers.
  UnionOfCqs phi;
  phi.Add(MustParseCq("q(X) :- e(X, X)."));
  UnionOfCqs psi;
  psi.Add(MustParseCq("q(X) :- e(X, A), f(A)."));
  psi.Add(MustParseCq("q(X) :- e(A, X), g(A)."));
  EXPECT_FALSE(IsUcqContained(phi, psi));
}

TEST(UcqContainmentTest, EquivalentUpToRenamingAndReordering) {
  UnionOfCqs a;
  a.Add(MustParseCq("q(X) :- e(X, T), f(T)."));
  a.Add(MustParseCq("q(X) :- g(X)."));
  UnionOfCqs b;
  b.Add(MustParseCq("q(U) :- g(U)."));
  b.Add(MustParseCq("q(U) :- f(W), e(U, W)."));
  EXPECT_TRUE(IsUcqEquivalent(a, b));
}

TEST(RemoveRedundantDisjunctsTest, DropsSubsumedDisjuncts) {
  UnionOfCqs ucq;
  ucq.Add(MustParseCq("q(X) :- e(X, A), e(A, B)."));  // path-2: subsumed
  ucq.Add(MustParseCq("q(X) :- e(X, A)."));           // path-1: keeps
  ucq.Add(MustParseCq("q(X) :- f(X)."));
  UnionOfCqs reduced = RemoveRedundantDisjuncts(ucq);
  EXPECT_EQ(reduced.size(), 2u);
  EXPECT_TRUE(IsUcqEquivalent(ucq, reduced));
}

TEST(RemoveRedundantDisjunctsTest, KeepsOneOfEquivalentPair) {
  UnionOfCqs ucq;
  ucq.Add(MustParseCq("q(X) :- e(X, A)."));
  ucq.Add(MustParseCq("q(U) :- e(U, W)."));  // same up to renaming
  UnionOfCqs reduced = RemoveRedundantDisjuncts(ucq);
  EXPECT_EQ(reduced.size(), 1u);
}

}  // namespace
}  // namespace datalog
