#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/containment/decider.h"
#include "src/corpus/certificate.h"
#include "src/corpus/format.h"
#include "src/corpus/generate.h"
#include "src/corpus/pipeline.h"
#include "src/corpus/verify.h"

namespace datalog {
namespace corpus {
namespace {

std::vector<Certificate> AllCertificates(const PipelineResult& result) {
  std::vector<Certificate> all;
  for (const StageReport& stage : result.stages) {
    all.insert(all.end(), stage.certificates.begin(),
               stage.certificates.end());
  }
  return all;
}

// One seeded corpus, one pipeline run, three properties: stage
// accounting (holdouts shrink monotonically to zero), cheap-stage
// verdict agreement with the full ptrees decider, and 100% certificate
// verification with complete coverage.
TEST(CorpusPipelineTest, SeededCorpusStagesAgreeAndVerify) {
  CorpusGenOptions gen;
  gen.seed = 2026;
  gen.count = 300;
  std::vector<CorpusInstance> instances = GenerateCorpus(gen);
  StatusOr<PipelineResult> result = RunCorpusPipeline(instances);
  ASSERT_TRUE(result.ok()) << result.status().message();

  // Stage accounting: the five stages in contract order, each entering
  // exactly the previous stage's holdout, holdouts non-increasing, and
  // nothing left unresolved after ptrees.
  ASSERT_EQ(result->stages.size(), 5u);
  const char* kNames[] = {"lint", "forward", "linear", "unfold", "ptrees"};
  std::size_t prev_holdout = instances.size();
  for (std::size_t s = 0; s < result->stages.size(); ++s) {
    const StageReport& stage = result->stages[s];
    EXPECT_EQ(stage.name, kNames[s]);
    EXPECT_EQ(stage.entered, prev_holdout);
    EXPECT_LE(stage.holdout, stage.entered);
    EXPECT_EQ(stage.decided, stage.entered - stage.holdout);
    prev_holdout = stage.holdout;
  }
  EXPECT_EQ(prev_holdout, 0u);
  EXPECT_EQ(result->equivalent + result->forward_only +
                result->backward_only + result->incomparable +
                result->invalid,
            instances.size());
  // The generator's families all actually show up.
  EXPECT_GT(result->invalid, 0u);
  EXPECT_GT(result->equivalent, 0u);
  EXPECT_GT(result->forward_only, 0u);

  // Differential: every backward verdict issued by a cheap stage (a
  // linear-arm refutation or an unfold enumeration) is re-decided by
  // the full ptrees decider, and the verdicts must match.
  std::size_t rechecked = 0;
  for (const StageReport& stage : result->stages) {
    if (stage.name != "linear" && stage.name != "unfold") continue;
    for (const Certificate& cert : stage.certificates) {
      bool cheap_contained = false;
      if (cert.kind == CertificateKind::kBackwardContainedUnfold) {
        cheap_contained = true;
      } else if (cert.kind != CertificateKind::kBackwardNotContained) {
        continue;
      }
      const CorpusInstance& instance = instances[cert.instance_id];
      ASSERT_EQ(instance.id, cert.instance_id);
      StatusOr<ContainmentDecision> full = DecideDatalogInUcq(
          instance.program, instance.goal, instance.theta);
      ASSERT_TRUE(full.ok()) << "instance " << instance.id << ": "
                             << full.status().message();
      EXPECT_EQ(full->contained, cheap_contained)
          << "instance " << instance.id << " (stage " << stage.name << ")";
      ++rechecked;
    }
  }
  EXPECT_GT(rechecked, 50u);

  // Every certificate replays in the AST-only verifier, and coverage is
  // complete: invalid, or one forward plus one backward certificate.
  std::vector<Certificate> all = AllCertificates(*result);
  StatusOr<VerifyReport> report = VerifyCorpus(instances, all);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->certificates_checked, all.size());
  EXPECT_EQ(report->invalid_instances, result->invalid);
  EXPECT_EQ(report->forward_covered, instances.size() - result->invalid);
  EXPECT_EQ(report->backward_covered, instances.size() - result->invalid);
}

// The pipeline's merged output is a function of the corpus alone:
// rerunning it — with a different worker count — reproduces the flags,
// the stage counters, and the serialized certificates byte for byte.
TEST(CorpusPipelineTest, OutputIsThreadCountIndependent) {
  CorpusGenOptions gen;
  gen.seed = 5;
  gen.count = 80;
  std::vector<CorpusInstance> instances = GenerateCorpus(gen);
  PipelineOptions serial;
  serial.threads = 1;
  PipelineOptions fanned;
  fanned.threads = 4;
  StatusOr<PipelineResult> a = RunCorpusPipeline(instances, serial);
  StatusOr<PipelineResult> b = RunCorpusPipeline(instances, fanned);
  ASSERT_TRUE(a.ok()) << a.status().message();
  ASSERT_TRUE(b.ok()) << b.status().message();
  EXPECT_EQ(a->flags, b->flags);
  ASSERT_EQ(a->stages.size(), b->stages.size());
  for (std::size_t s = 0; s < a->stages.size(); ++s) {
    EXPECT_EQ(a->stages[s].entered, b->stages[s].entered);
    EXPECT_EQ(a->stages[s].decided, b->stages[s].decided);
    EXPECT_EQ(a->stages[s].holdout, b->stages[s].holdout);
    EXPECT_EQ(SerializeCertificates(a->stages[s].certificates),
              SerializeCertificates(b->stages[s].certificates));
  }
}

// The fixed golden corpus lands one instance in each headline verdict
// class, and its certificates verify — the same three instances the
// hand-written goldens under tools/testdata/corpus/ are keyed against.
TEST(CorpusPipelineTest, GoldenCorpusVerdicts) {
  std::vector<CorpusInstance> instances = GoldenCorpus();
  ASSERT_EQ(instances.size(), 3u);
  StatusOr<PipelineResult> result = RunCorpusPipeline(instances);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->forward_only, 1u);
  EXPECT_EQ(result->equivalent, 1u);
  EXPECT_EQ(result->invalid, 1u);
  StatusOr<VerifyReport> report =
      VerifyCorpus(instances, AllCertificates(*result));
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->invalid_instances, 1u);
  EXPECT_EQ(report->forward_covered, 2u);
  EXPECT_EQ(report->backward_covered, 2u);
}

}  // namespace
}  // namespace corpus
}  // namespace datalog
