#include <gtest/gtest.h>

#include <random>

#include "src/automata/nfa.h"

namespace datalog {
namespace {

// L = words over {0,1} ending in 1.
Nfa EndsInOne() {
  Nfa nfa(2, 2);
  nfa.SetInitial(0);
  nfa.SetAccepting(1);
  nfa.AddTransition(0, 0, 0);
  nfa.AddTransition(0, 1, 0);
  nfa.AddTransition(0, 1, 1);
  return nfa;
}

// L = words with even length over {0,1}.
Nfa EvenLength() {
  Nfa nfa(2, 2);
  nfa.SetInitial(0);
  nfa.SetAccepting(0);
  for (int sym = 0; sym < 2; ++sym) {
    nfa.AddTransition(0, sym, 1);
    nfa.AddTransition(1, sym, 0);
  }
  return nfa;
}

// L = all words over {0,1}.
Nfa AllWords() {
  Nfa nfa(1, 2);
  nfa.SetInitial(0);
  nfa.SetAccepting(0);
  nfa.AddTransition(0, 0, 0);
  nfa.AddTransition(0, 1, 0);
  return nfa;
}

Nfa RandomNfa(std::mt19937_64& rng, int states, int symbols,
              double edge_prob) {
  Nfa nfa(states, symbols);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  nfa.SetInitial(0);
  for (int s = 0; s < states; ++s) {
    if (coin(rng) < 0.3) nfa.SetAccepting(s);
    for (int a = 0; a < symbols; ++a) {
      for (int t = 0; t < states; ++t) {
        if (coin(rng) < edge_prob) nfa.AddTransition(s, a, t);
      }
    }
  }
  return nfa;
}

std::vector<std::vector<int>> AllWordsUpTo(int symbols, int max_len) {
  std::vector<std::vector<int>> words = {{}};
  std::vector<std::vector<int>> frontier = {{}};
  for (int len = 1; len <= max_len; ++len) {
    std::vector<std::vector<int>> next;
    for (const auto& w : frontier) {
      for (int a = 0; a < symbols; ++a) {
        std::vector<int> extended = w;
        extended.push_back(a);
        next.push_back(extended);
        words.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
  }
  return words;
}

TEST(NfaTest, AcceptsBasics) {
  Nfa nfa = EndsInOne();
  EXPECT_TRUE(nfa.Accepts({1}));
  EXPECT_TRUE(nfa.Accepts({0, 0, 1}));
  EXPECT_FALSE(nfa.Accepts({}));
  EXPECT_FALSE(nfa.Accepts({1, 0}));
}

TEST(NfaTest, EmptinessAndShortestWord) {
  Nfa nfa = EndsInOne();
  EXPECT_FALSE(nfa.IsEmpty());
  auto word = nfa.ShortestWord();
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(*word, (std::vector<int>{1}));

  Nfa empty(2, 2);
  empty.SetInitial(0);
  empty.SetAccepting(1);  // unreachable
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_FALSE(empty.ShortestWord().has_value());
}

TEST(NfaTest, UnionAcceptsBoth) {
  Nfa u = Nfa::Union(EndsInOne(), EvenLength());
  EXPECT_TRUE(u.Accepts({1}));     // ends in one
  EXPECT_TRUE(u.Accepts({0, 0}));  // even length
  EXPECT_FALSE(u.Accepts({0}));    // neither
}

TEST(NfaTest, IntersectionRequiresBoth) {
  Nfa i = Nfa::Intersection(EndsInOne(), EvenLength());
  EXPECT_TRUE(i.Accepts({0, 1}));
  EXPECT_FALSE(i.Accepts({1}));
  EXPECT_FALSE(i.Accepts({0, 0}));
}

TEST(NfaTest, DeterminizePreservesLanguage) {
  Nfa nfa = EndsInOne();
  StatusOr<Nfa> det = nfa.Determinize();
  ASSERT_TRUE(det.ok());
  for (const auto& word : AllWordsUpTo(2, 6)) {
    EXPECT_EQ(nfa.Accepts(word), det->Accepts(word));
  }
}

TEST(NfaTest, ComplementFlipsMembership) {
  Nfa nfa = EndsInOne();
  StatusOr<Nfa> complement = nfa.Complement();
  ASSERT_TRUE(complement.ok());
  for (const auto& word : AllWordsUpTo(2, 6)) {
    EXPECT_NE(nfa.Accepts(word), complement->Accepts(word)) << word.size();
  }
}

TEST(NfaTest, ContainmentPositive) {
  // ends-in-1 ∩ even-length ⊆ ends-in-1.
  Nfa small = Nfa::Intersection(EndsInOne(), EvenLength());
  auto result = Nfa::Contains(small, EndsInOne());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contained);
}

TEST(NfaTest, ContainmentNegativeWithCounterexample) {
  auto result = Nfa::Contains(AllWords(), EndsInOne());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->contained);
  // The counterexample is accepted by `a` but not `b`.
  EXPECT_TRUE(AllWords().Accepts(result->counterexample));
  EXPECT_FALSE(EndsInOne().Accepts(result->counterexample));
  // BFS yields a shortest counterexample: the empty word.
  EXPECT_TRUE(result->counterexample.empty());
}

TEST(NfaTest, ContainmentAgreesWithComplementConstruction) {
  // L(a) ⊆ L(b) iff L(a) ∩ complement(L(b)) = ∅ (the paper's reduction).
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 60; ++trial) {
    Nfa a = RandomNfa(rng, 4, 2, 0.25);
    Nfa b = RandomNfa(rng, 4, 2, 0.25);
    auto onthefly = Nfa::Contains(a, b);
    ASSERT_TRUE(onthefly.ok());
    StatusOr<Nfa> not_b = b.Complement();
    ASSERT_TRUE(not_b.ok());
    bool via_complement = Nfa::Intersection(a, *not_b).IsEmpty();
    EXPECT_EQ(onthefly->contained, via_complement) << "trial " << trial;
  }
}

TEST(NfaTest, AntichainAndExactAgree) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    Nfa a = RandomNfa(rng, 5, 2, 0.3);
    Nfa b = RandomNfa(rng, 5, 2, 0.3);
    Nfa::ContainmentOptions with;
    with.antichain = true;
    Nfa::ContainmentOptions without;
    without.antichain = false;
    auto r1 = Nfa::Contains(a, b, with);
    auto r2 = Nfa::Contains(a, b, without);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r1->contained, r2->contained) << "trial " << trial;
    EXPECT_LE(r1->explored, r2->explored);
  }
}

TEST(NfaTest, CounterexamplesAreGenuine) {
  std::mt19937_64 rng(99);
  int negatives = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Nfa a = RandomNfa(rng, 4, 2, 0.35);
    Nfa b = RandomNfa(rng, 4, 2, 0.2);
    auto result = Nfa::Contains(a, b);
    ASSERT_TRUE(result.ok());
    if (!result->contained) {
      ++negatives;
      EXPECT_TRUE(a.Accepts(result->counterexample));
      EXPECT_FALSE(b.Accepts(result->counterexample));
    }
  }
  EXPECT_GT(negatives, 5) << "test should exercise the negative path";
}

TEST(NfaTest, ResourceLimitOnContainment) {
  std::mt19937_64 rng(3);
  Nfa a = RandomNfa(rng, 8, 2, 0.4);
  Nfa b = RandomNfa(rng, 8, 2, 0.4);
  Nfa::ContainmentOptions options;
  options.limits.max_explored = 1;
  options.antichain = false;
  auto result = Nfa::Contains(a, b, options);
  // Either it found a violation within the first pair, or it hit the cap.
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(NfaTest, AddStateGrowsAutomaton) {
  Nfa nfa(1, 2);
  int s = nfa.AddState();
  EXPECT_EQ(s, 1);
  EXPECT_EQ(nfa.num_states(), 2u);
  nfa.AddTransition(0, 0, s);
  EXPECT_EQ(nfa.NumTransitions(), 1u);
}

}  // namespace
}  // namespace datalog
