#include <gtest/gtest.h>

#include "src/cq/containment.h"
#include "src/cq/minimize.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

TEST(MinimizeTest, RemovesFoldableAtom) {
  // e(X, Z) with Z existential folds onto e(X, Y).
  ConjunctiveQuery cq = MustParseCq("q(X) :- e(X, Y), e(X, Z), f(Y).");
  ConjunctiveQuery core = MinimizeCq(cq);
  EXPECT_EQ(core.body().size(), 2u);
  EXPECT_TRUE(IsCqContained(cq, core));
  EXPECT_TRUE(IsCqContained(core, cq));
}

TEST(MinimizeTest, KeepsIrredundantQuery) {
  ConjunctiveQuery cq = MustParseCq("q(X, Y) :- e(X, Z), e(Z, Y).");
  ConjunctiveQuery core = MinimizeCq(cq);
  EXPECT_EQ(core.body().size(), 2u);
}

TEST(MinimizeTest, PathFoldsOntoSelfLoopPattern) {
  // Body: e(X,X), e(X,Y) with Y existential: e(X,Y) maps to e(X,X).
  ConjunctiveQuery cq = MustParseCq("q(X) :- e(X, X), e(X, Y).");
  ConjunctiveQuery core = MinimizeCq(cq);
  EXPECT_EQ(core.body().size(), 1u);
  EXPECT_EQ(core.body()[0], MustParseAtom("e(X, X)"));
}

TEST(MinimizeTest, DistinguishedVariablesBlockFolding) {
  // Y distinguished: e(X,Y) cannot fold onto e(X,X).
  ConjunctiveQuery cq = MustParseCq("q(X, Y) :- e(X, X), e(X, Y).");
  ConjunctiveQuery core = MinimizeCq(cq);
  EXPECT_EQ(core.body().size(), 2u);
}

TEST(MinimizeTest, ChainOfRedundantAtoms) {
  // A long existential chain from X folds onto the single edge e(X, X).
  ConjunctiveQuery cq =
      MustParseCq("q(X) :- e(X, X), e(X, A), e(A, B), e(B, C).");
  ConjunctiveQuery core = MinimizeCq(cq);
  EXPECT_EQ(core.body().size(), 1u);
}

TEST(MinimizeTest, EmptyBodyUnchanged) {
  ConjunctiveQuery cq = MustParseCq("q(X, X) :- .");
  EXPECT_EQ(MinimizeCq(cq), cq);
}

TEST(MinimizeTest, ConstantsRespected) {
  ConjunctiveQuery cq = MustParseCq("q(X) :- e(X, a), e(X, Y).");
  // e(X, Y) folds onto e(X, a) via Y -> a.
  ConjunctiveQuery core = MinimizeCq(cq);
  EXPECT_EQ(core.body().size(), 1u);
  EXPECT_EQ(core.body()[0], MustParseAtom("e(X, a)"));
}

TEST(MinimizeUcqTest, MinimizesDisjunctsAndDropsRedundant) {
  UnionOfCqs ucq;
  ucq.Add(MustParseCq("q(X) :- e(X, A), e(X, B)."));  // core: e(X, A)
  ucq.Add(MustParseCq("q(X) :- e(X, C)."));           // equivalent to above
  ucq.Add(MustParseCq("q(X) :- f(X)."));
  UnionOfCqs minimized = MinimizeUcq(ucq);
  EXPECT_EQ(minimized.size(), 2u);
  EXPECT_TRUE(IsUcqEquivalent(ucq, minimized));
  for (const ConjunctiveQuery& cq : minimized.disjuncts()) {
    EXPECT_EQ(cq.body().size(), 1u);
  }
}

}  // namespace
}  // namespace datalog
