#include <gtest/gtest.h>

#include "src/ast/analysis.h"
#include "src/engine/eval.h"
#include "src/generators/examples.h"
#include "src/util/strings.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

Database LineGraph(int length) {
  Database db;
  for (int i = 0; i < length; ++i) {
    db.AddFact("e", {StrCat("n", i), StrCat("n", i + 1)});
  }
  return db;
}

TEST(GeneratorsTest, BuysProgramsShape) {
  EXPECT_TRUE(IsRecursive(Buys1Program()));
  EXPECT_TRUE(IsRecursive(Buys2Program()));
  EXPECT_FALSE(IsRecursive(Buys1NonrecursiveProgram()));
  EXPECT_FALSE(IsRecursive(Buys2NonrecursiveProgram()));
  EXPECT_TRUE(IsLinear(Buys1Program()));
}

TEST(GeneratorsTest, TransitiveClosureSemantics) {
  Program tc = TransitiveClosureProgram("e", "e");
  StatusOr<Relation> result = EvaluateGoal(tc, "p", LineGraph(4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 10u);  // 5 choose 2
}

TEST(GeneratorsTest, DistProgramComputesExactPowersOfTwo) {
  // dist_n(x, y) iff a path of length exactly 2^n.
  for (int n = 0; n <= 3; ++n) {
    Program p = DistProgram(n);
    EXPECT_FALSE(IsRecursive(p));
    Database db = LineGraph(10);
    StatusOr<Relation> result = EvaluateGoal(p, DistPredicate(n), db);
    ASSERT_TRUE(result.ok());
    int len = 1 << n;
    EXPECT_EQ(result->size(), static_cast<std::size_t>(11 - len))
        << "n=" << n;
  }
}

TEST(GeneratorsTest, DistLeProgramComputesAtMostBounds) {
  // dist_n: length <= 2^n; distle_n: length <= 2^n - 1.
  Program p = DistLeProgram(2);
  EXPECT_FALSE(IsRecursive(p));
  Database db = LineGraph(10);
  StatusOr<Relation> dist = EvaluateGoal(p, DistPredicate(2), db);
  StatusOr<Relation> distle = EvaluateGoal(p, DistLePredicate(2), db);
  ASSERT_TRUE(dist.ok());
  ASSERT_TRUE(distle.ok());
  // Pairs (i, j), 0 <= i <= j <= 10 with j - i <= 4: for each i,
  // min(4, 10-i)+1 values.
  std::size_t expect_dist = 0;
  std::size_t expect_distle = 0;
  for (int i = 0; i <= 10; ++i) {
    expect_dist += std::min(4, 10 - i) + 1;
    expect_distle += std::min(3, 10 - i) + 1;
  }
  EXPECT_EQ(dist->size(), expect_dist);
  EXPECT_EQ(distle->size(), expect_distle);
}

TEST(GeneratorsTest, WordProgramTracksLabels) {
  Program p = WordProgram(2);
  EXPECT_FALSE(IsRecursive(p));
  EXPECT_TRUE(IsLinearInIdb(p));
  Database db;
  db.AddFact("e", {"a", "b"});
  db.AddFact("e", {"b", "c"});
  db.AddFact("zero", {"a"});
  db.AddFact("one", {"c"});
  StatusOr<Relation> result = EvaluateGoal(p, WordPredicate(2), db);
  ASSERT_TRUE(result.ok());
  // word2(x, y): path of length 2 where the paper's rules check a label on
  // the start node (word1) and on the endpoint of each later step:
  // a -e-> b -e-> c with zero(a) and one(c).
  EXPECT_EQ(result->size(), 1u);
  Tuple expected = {db.dictionary().Lookup("a"),
                    db.dictionary().Lookup("c")};
  EXPECT_TRUE(result->Contains(expected));
}

TEST(GeneratorsTest, EqualProgramMatchesLabeledPaths) {
  Program p = EqualProgram(1);
  EXPECT_FALSE(IsRecursive(p));
  Database db;
  // Two parallel 2-paths with equal labels.
  db.AddFact("e", {"a0", "a1"});
  db.AddFact("e", {"a1", "a2"});
  db.AddFact("e", {"b0", "b1"});
  db.AddFact("e", {"b1", "b2"});
  for (const char* node : {"a0", "b0"}) db.AddFact("zero", {node});
  for (const char* node : {"a1", "b1"}) db.AddFact("one", {node});
  StatusOr<Relation> result = EvaluateGoal(p, EqualPredicate(1), db);
  ASSERT_TRUE(result.ok());
  // equal1(a0, a2, b0, b2) must hold (labels zero,one on both paths);
  // symmetric and self-paired variants too.
  Tuple expected = {
      db.dictionary().Lookup("a0"), db.dictionary().Lookup("a2"),
      db.dictionary().Lookup("b0"), db.dictionary().Lookup("b2")};
  EXPECT_TRUE(result->Contains(expected));
}

TEST(GeneratorsTest, PathQueriesAndChainQuery) {
  UnionOfCqs paths = PathQueries(3);
  EXPECT_EQ(paths.size(), 3u);
  EXPECT_EQ(ChainQuery(4).body().size(), 4u);
  EXPECT_EQ(ChainQuery(1).body().size(), 1u);
}

TEST(GeneratorsTest, ChainProgramShape) {
  Program p = ChainProgram(3);
  EXPECT_TRUE(IsRecursive(p));
  EXPECT_TRUE(IsLinear(p));
  EXPECT_EQ(p.rules()[0].body().size(), 4u);  // 3 edges + recursive call
  StatusOr<Relation> result = EvaluateGoal(p, "p", LineGraph(7));
  ASSERT_TRUE(result.ok());
  // Paths of length 1, 4, 7 from node i: lengths ≡ 1 (mod 3).
  std::size_t expected = 0;
  for (int len = 1; len <= 7; len += 3) expected += 8 - len;
  EXPECT_EQ(result->size(), expected);
}

TEST(GeneratorsTest, AllGeneratedProgramsValidate) {
  std::vector<Program> programs = {
      Buys1Program(),      Buys2Program(),
      Buys1NonrecursiveProgram(), Buys2NonrecursiveProgram(),
      TransitiveClosureProgram(), NonlinearTransitiveClosureProgram(),
      DistProgram(4),      DistLeProgram(4),
      EqualProgram(3),     WordProgram(4),
      ChainProgram(2),
  };
  for (const Program& p : programs) {
    EXPECT_TRUE(p.Validate().ok()) << p.ToString();
  }
}

}  // namespace
}  // namespace datalog
