#include <gtest/gtest.h>

#include "src/containment/ptrees_automaton.h"
#include "src/generators/examples.h"
#include "src/trees/enumerate.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

Program SmallTc() { return TransitiveClosureProgram("e", "e0"); }

TEST(ProgramAlphabetTest, SizeIsExponentialInRuleVariables) {
  // TC: var(Π) has 6 variables; rule 1 has 3 variables (6^3 = 216
  // instances), rule 2 has 2 (6^2 = 36): 252 labels (Proposition 5.9:
  // exponential in the size of Π).
  StatusOr<ProgramAlphabet> alphabet = BuildProgramAlphabet(SmallTc());
  ASSERT_TRUE(alphabet.ok());
  EXPECT_EQ(alphabet->num_labels(), 252u);
  EXPECT_EQ(alphabet->proof_vars.size(), 6u);
}

TEST(ProgramAlphabetTest, LabelLimitEnforced) {
  StatusOr<ProgramAlphabet> alphabet = BuildProgramAlphabet(SmallTc(), ExecutionLimits().WithMaxLabels(10));
  ASSERT_FALSE(alphabet.ok());
  EXPECT_EQ(alphabet.status().code(), StatusCode::kResourceExhausted);
}

TEST(PtreesAutomatonTest, AcceptsExactlyValidProofTrees) {
  Program tc = SmallTc();
  StatusOr<PtreesAutomaton> automaton = BuildPtreesAutomaton(tc, "p");
  ASSERT_TRUE(automaton.ok());
  // Every enumerated proof tree encodes and is accepted.
  EnumerateOptions options;
  options.max_depth = 2;
  options.max_trees = 5000;
  std::size_t accepted = 0;
  EnumerateProofTrees(tc, "p", options, [&](const ExpansionTree& tree) {
    std::optional<LabeledTree> encoded =
        ProofTreeToLabeledTree(automaton->alphabet, tree);
    EXPECT_TRUE(encoded.has_value()) << tree.ToString();
    EXPECT_TRUE(automaton->nfta.Accepts(*encoded)) << tree.ToString();
    ++accepted;
    return true;
  });
  EXPECT_GT(accepted, 100u);
}

TEST(PtreesAutomatonTest, MembershipMatchesValidityOnArbitraryLabeledTrees) {
  // Enumerate arbitrary labeled trees (valid or not) over the alphabet:
  // the automaton accepts a tree iff it decodes to a valid proof tree
  // whose root is a goal-predicate atom.
  Program tc = SmallTc();
  StatusOr<PtreesAutomaton> automaton = BuildPtreesAutomaton(tc, "p");
  ASSERT_TRUE(automaton.ok());
  std::size_t checked = 0;
  std::size_t accepted = 0;
  EnumerateLabeledTrees(
      automaton->alphabet.arities, 2, 3000, [&](const LabeledTree& tree) {
        ExpansionTree decoded =
            LabeledTreeToProofTree(automaton->alphabet, tree);
        bool valid = ValidateProofTree(tc, decoded).ok() &&
                     decoded.root().goal.predicate() == "p";
        bool accepts = automaton->nfta.Accepts(tree);
        EXPECT_EQ(accepts, valid) << decoded.ToString();
        ++checked;
        if (accepts) ++accepted;
        return true;
      });
  EXPECT_GT(checked, 1000u);
  EXPECT_GT(accepted, 0u);
}

TEST(PtreesAutomatonTest, WitnessTreeIsAValidProofTree) {
  Program tc = SmallTc();
  StatusOr<PtreesAutomaton> automaton = BuildPtreesAutomaton(tc, "p");
  ASSERT_TRUE(automaton.ok());
  std::optional<LabeledTree> witness = automaton->nfta.WitnessTree();
  ASSERT_TRUE(witness.has_value());
  ExpansionTree decoded =
      LabeledTreeToProofTree(automaton->alphabet, *witness);
  EXPECT_TRUE(ValidateProofTree(tc, decoded).ok());
  EXPECT_EQ(decoded.root().goal.predicate(), "p");
}

TEST(PtreesAutomatonTest, NoBaseRuleMeansEmptyLanguage) {
  Program no_base = MustParseProgram("p(X, Y) :- e(X, Z), p(Z, Y).");
  StatusOr<PtreesAutomaton> automaton = BuildPtreesAutomaton(no_base, "p");
  ASSERT_TRUE(automaton.ok());
  EXPECT_TRUE(automaton->nfta.IsEmpty());
}

TEST(PtreesAutomatonTest, RoundTripEncoding) {
  Program tc = SmallTc();
  StatusOr<PtreesAutomaton> automaton = BuildPtreesAutomaton(tc, "p");
  ASSERT_TRUE(automaton.ok());
  EnumerateOptions options;
  options.max_depth = 2;
  options.max_trees = 50;
  EnumerateProofTrees(tc, "p", options, [&](const ExpansionTree& tree) {
    std::optional<LabeledTree> encoded =
        ProofTreeToLabeledTree(automaton->alphabet, tree);
    EXPECT_TRUE(encoded.has_value());
    ExpansionTree decoded =
        LabeledTreeToProofTree(automaton->alphabet, *encoded);
    EXPECT_EQ(decoded.root().rule, tree.root().rule);
    EXPECT_EQ(decoded.Size(), tree.Size());
    return true;
  });
}

TEST(PtreesAutomatonTest, InternedArmDecodesLabelsAndStatesLazily) {
  Program tc = SmallTc();
  StatusOr<PtreesAutomaton> automaton = BuildPtreesAutomaton(tc, "p");
  ASSERT_TRUE(automaton.ok());
  // The interned construction runs entirely on the IR rows: building
  // the automaton renders no Term-level label or state atom at all.
  ASSERT_TRUE(automaton->alphabet.interned);
  EXPECT_EQ(automaton->alphabet.num_decoded_labels(), 0u);
  EXPECT_EQ(automaton->num_decoded_state_atoms(), 0u);
  // Rendering is per-symbol on demand and cached: touching one label
  // and one state decodes exactly one of each; repeat access is free.
  const Rule& label = automaton->alphabet.Label(7);
  EXPECT_EQ(automaton->alphabet.num_decoded_labels(), 1u);
  EXPECT_EQ(&automaton->alphabet.Label(7), &label);
  EXPECT_EQ(automaton->alphabet.num_decoded_labels(), 1u);
  const Atom& state = automaton->StateAtom(3);
  EXPECT_EQ(automaton->num_decoded_state_atoms(), 1u);
  EXPECT_EQ(&automaton->StateAtom(3), &state);
  EXPECT_EQ(automaton->num_decoded_state_atoms(), 1u);
  // The lazy views agree with the eager string arm, whose counters stay
  // zero no matter how many views are taken.
  StatusOr<PtreesAutomaton> eager =
      BuildPtreesAutomaton(tc, "p", ExecutionLimits(), /*use_ir=*/false);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(label.ToString(), eager->alphabet.Label(7).ToString());
  EXPECT_EQ(state.ToString(), eager->StateAtom(3).ToString());
  EXPECT_EQ(eager->alphabet.num_decoded_labels(), 0u);
  EXPECT_EQ(eager->num_decoded_state_atoms(), 0u);
  // A full StateOf round-trip decodes every state exactly once.
  for (std::size_t s = 0; s < automaton->num_states(); ++s) {
    EXPECT_EQ(automaton->StateOf(automaton->StateAtom(s)),
              static_cast<int>(s));
  }
  EXPECT_EQ(automaton->num_decoded_state_atoms(), automaton->num_states());
}

TEST(PtreesAutomatonTest, TreesOutsideVarPiAreNotEncodable) {
  Program tc = SmallTc();
  StatusOr<PtreesAutomaton> automaton = BuildPtreesAutomaton(tc, "p");
  ASSERT_TRUE(automaton.ok());
  // An unfolding tree with fresh variables is not a proof tree.
  EnumerateOptions options;
  options.max_depth = 2;
  EnumerateUnfoldingTrees(tc, "p", options, [&](const ExpansionTree& tree) {
    if (tree.Depth() == 2) {
      EXPECT_FALSE(
          ProofTreeToLabeledTree(automaton->alphabet, tree).has_value());
    }
    return true;
  });
}

}  // namespace
}  // namespace datalog
