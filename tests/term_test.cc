#include <gtest/gtest.h>

#include "src/ast/term.h"

namespace datalog {
namespace {

TEST(TermTest, VariableAndConstantAreDistinct) {
  Term v = Term::Variable("x");
  Term c = Term::Constant("x");
  EXPECT_TRUE(v.is_variable());
  EXPECT_TRUE(c.is_constant());
  EXPECT_NE(v, c);
  TermHash hash;
  EXPECT_NE(hash(v), hash(c));
}

TEST(TermTest, Ordering) {
  EXPECT_LT(Term::Variable("a"), Term::Variable("b"));
  // Kind dominates: all variables come before all constants.
  EXPECT_LT(Term::Variable("z"), Term::Constant("a"));
}

TEST(TermTest, SubstitutionOnlyRemapsVariables) {
  Substitution s;
  s.emplace("x", Term::Constant("a"));
  EXPECT_EQ(ApplySubstitution(s, Term::Variable("x")), Term::Constant("a"));
  EXPECT_EQ(ApplySubstitution(s, Term::Variable("y")), Term::Variable("y"));
  EXPECT_EQ(ApplySubstitution(s, Term::Constant("x")), Term::Constant("x"));
}

TEST(AtomTest, ToStringForms) {
  Atom p("p", {Term::Variable("X"), Term::Constant("a")});
  EXPECT_EQ(p.ToString(), "p(X, a)");
  Atom zero("c", {});
  EXPECT_EQ(zero.ToString(), "c");
}

TEST(AtomTest, EqualityAndHash) {
  Atom a("p", {Term::Variable("X")});
  Atom b("p", {Term::Variable("X")});
  Atom c("p", {Term::Variable("Y")});
  Atom d("q", {Term::Variable("X")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  AtomHash hash;
  EXPECT_EQ(hash(a), hash(b));
}

TEST(AtomTest, VariableNamesDeduplicated) {
  Atom a("p", {Term::Variable("X"), Term::Variable("Y"), Term::Variable("X"),
               Term::Constant("k")});
  EXPECT_EQ(a.VariableNames(), (std::vector<std::string>{"X", "Y"}));
}

TEST(AtomTest, SubstitutionAppliesToAllArgs) {
  Substitution s;
  s.emplace("X", Term::Variable("Z"));
  Atom a("p", {Term::Variable("X"), Term::Variable("Y"), Term::Variable("X")});
  Atom expected("p", {Term::Variable("Z"), Term::Variable("Y"),
                      Term::Variable("Z")});
  EXPECT_EQ(ApplySubstitution(s, a), expected);
}

TEST(AtomTest, CollectVariablesAcrossAtoms) {
  std::vector<Atom> atoms = {
      Atom("p", {Term::Variable("X"), Term::Variable("Y")}),
      Atom("q", {Term::Variable("Y"), Term::Variable("Z")}),
  };
  EXPECT_EQ(CollectVariables(atoms),
            (std::vector<std::string>{"X", "Y", "Z"}));
}

}  // namespace
}  // namespace datalog
