// Randomized differential testing of the containment machinery: for
// seeded random (program, union) instances, every implemented decision
// path must agree —
//   * the on-the-fly tree decider, antichain and exact modes (§5.2),
//   * the word-automaton track for linear programs (Theorem 5.12's
//     parenthetical),
//   * the explicit A^ptrees / A^θ automata pipeline (Theorem 5.11),
// and every verdict must be corroborated semantically:
//   * "contained"  -> every enumerable proof tree is strongly covered and
//                     evaluation on random databases respects inclusion;
//   * "not contained" -> the counterexample proof tree is valid, escapes
//                     every disjunct, and separates the two sides on its
//                     frozen database.
#include <gtest/gtest.h>

#include <random>

#include "src/ast/analysis.h"
#include "src/containment/decider.h"
#include "src/containment/linear.h"
#include "src/containment/theta_automaton.h"
#include "src/cq/containment.h"
#include "src/cq/minimize.h"
#include "src/engine/eval.h"
#include "src/engine/random_db.h"
#include "src/trees/connectivity.h"
#include "src/trees/enumerate.h"
#include "src/trees/strong_mapping.h"
#include "src/util/strings.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

// --- random instance generation --------------------------------------

const char* const kEdbPredicates[] = {"e", "f", "g"};
const std::size_t kEdbArities[] = {2, 1, 2};
const char* const kVariables[] = {"X", "Y", "Z", "W"};

Atom RandomEdbAtom(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> pred_pick(0, 2);
  std::uniform_int_distribution<int> var_pick(0, 3);
  int p = pred_pick(rng);
  std::vector<Term> args;
  for (std::size_t i = 0; i < kEdbArities[p]; ++i) {
    args.push_back(Term::Variable(kVariables[var_pick(rng)]));
  }
  return Atom(kEdbPredicates[p], std::move(args));
}

// A random program with goal predicate p/2: a couple of rules with random
// EDB atoms; each rule is recursive with probability 1/2 (then linear
// with probability 3/4).
Program RandomProgram(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> rule_count(2, 3);
  std::uniform_int_distribution<int> atom_count(1, 2);
  std::uniform_int_distribution<int> coin(0, 3);
  std::uniform_int_distribution<int> var_pick(0, 3);
  Program program;
  int rules = rule_count(rng);
  for (int r = 0; r < rules; ++r) {
    std::vector<Atom> body;
    int atoms = atom_count(rng);
    for (int a = 0; a < atoms; ++a) body.push_back(RandomEdbAtom(rng));
    bool recursive = (r > 0) && coin(rng) < 2;  // rule 0 stays a base case
    if (recursive) {
      body.push_back(Atom("p", {Term::Variable(kVariables[var_pick(rng)]),
                                Term::Variable(kVariables[var_pick(rng)])}));
      if (coin(rng) == 0) {  // occasionally nonlinear
        body.push_back(
            Atom("p", {Term::Variable(kVariables[var_pick(rng)]),
                       Term::Variable(kVariables[var_pick(rng)])}));
      }
    }
    program.AddRule(
        Rule(Atom("p", {Term::Variable("X"), Term::Variable("Y")}),
             std::move(body)));
  }
  return program;
}

UnionOfCqs RandomUnion(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> disjunct_count(1, 3);
  std::uniform_int_distribution<int> atom_count(1, 3);
  UnionOfCqs theta;
  int disjuncts = disjunct_count(rng);
  for (int d = 0; d < disjuncts; ++d) {
    std::vector<Atom> body;
    int atoms = atom_count(rng);
    for (int a = 0; a < atoms; ++a) body.push_back(RandomEdbAtom(rng));
    theta.Add(ConjunctiveQuery(
        {Term::Variable("X"), Term::Variable("Y")}, std::move(body)));
  }
  return theta;
}

// --- the differential harness -----------------------------------------

class ContainmentPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ContainmentPropertyTest, AllDecisionPathsAgreeAndVerdictsHold) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  Program program = RandomProgram(rng);
  UnionOfCqs theta = RandomUnion(rng);
  SCOPED_TRACE(StrCat("program:\n", program.ToString(), "\ntheta:\n",
                      theta.ToString()));

  // Reference verdict: tree decider with antichain.
  ContainmentOptions antichain_options;
  StatusOr<ContainmentDecision> reference =
      DecideDatalogInUcq(program, "p", theta, antichain_options);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // Path 2: exact (no antichain) mode.
  ContainmentOptions exact_options;
  exact_options.antichain = false;
  exact_options.limits.max_states = 200'000;
  StatusOr<ContainmentDecision> exact =
      DecideDatalogInUcq(program, "p", theta, exact_options);
  if (exact.ok()) {
    EXPECT_EQ(exact->contained, reference->contained);
    EXPECT_LE(reference->stats.states_discovered,
              exact->stats.states_discovered);
  }

  // Path 3: word automata, when the program is linear.
  if (IsLinearInIdb(program)) {
    StatusOr<LinearContainmentResult> linear =
        DecideLinearDatalogInUcq(program, "p", theta);
    ASSERT_TRUE(linear.ok()) << linear.status();
    EXPECT_EQ(linear->contained, reference->contained);
  }

  // Path 4: explicit automata pipeline (Theorem 5.11), within limits.
  ExecutionLimits limits;
  limits.max_states = 40'000;
  limits.max_transitions = 400'000;
  StatusOr<ExplicitContainmentResult> explicit_result =
      DecideContainmentViaExplicitAutomata(program, "p", theta, limits);
  if (explicit_result.ok()) {
    EXPECT_EQ(explicit_result->contained, reference->contained);
  } else {
    EXPECT_EQ(explicit_result.status().code(),
              StatusCode::kResourceExhausted);
  }

  if (reference->contained) {
    // Semantic corroboration 1: every enumerable proof tree is covered.
    EnumerateOptions enumerate;
    enumerate.max_depth = 3;
    enumerate.max_trees = 200;
    EnumerateProofTrees(program, "p", enumerate,
                        [&](const ExpansionTree& tree) {
                          EXPECT_TRUE(
                              AnyDisjunctMapsStrongly(program, tree, theta))
                              << tree.ToString();
                          return true;
                        });
    // Semantic corroboration 2: evaluation inclusion on random databases.
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      RandomDbOptions db_options;
      db_options.seed = seed;
      db_options.domain_size = 3;
      db_options.tuples_per_relation = 4;
      Database db = RandomDatabaseFor(program, db_options);
      StatusOr<Relation> lhs = EvaluateGoal(program, "p", db);
      StatusOr<Relation> rhs = EvaluateUcq(theta, db);
      ASSERT_TRUE(lhs.ok());
      ASSERT_TRUE(rhs.ok());
      for (const Tuple& tuple : lhs->tuples()) {
        EXPECT_TRUE(rhs->Contains(tuple)) << "db seed " << seed;
      }
    }
  } else {
    ASSERT_TRUE(reference->counterexample.has_value());
    const ExpansionTree& witness = *reference->counterexample;
    EXPECT_TRUE(ValidateProofTree(program, witness).ok())
        << ValidateProofTree(program, witness) << witness.ToString();
    EXPECT_FALSE(AnyDisjunctMapsStrongly(program, witness, theta))
        << witness.ToString();
    // Freeze the witness expansion into a database: the program derives
    // the goal tuple there, the union does not.
    ExpansionTree renamed = TreeConnectivity(witness).RenameByClass();
    ConjunctiveQuery expansion = TreeToCq(program, renamed);
    Database db;
    Substitution freeze;
    int counter = 0;
    for (const std::string& v : expansion.VariableNames()) {
      freeze.emplace(v, Term::Constant(StrCat("c", counter++)));
    }
    for (const Atom& atom : expansion.body()) {
      ASSERT_TRUE(db.AddFactAtom(ApplySubstitution(freeze, atom)).ok());
    }
    // The canonical instance's domain includes every frozen variable,
    // even head-only ones (matters for unsafe rules/queries, which range
    // over the active domain).
    for (const auto& [variable, constant] : freeze) {
      db.AddFact("__domain", {constant.name()});
    }
    Tuple goal_tuple;
    for (const Term& t : expansion.head_args()) {
      goal_tuple.push_back(
          db.dictionary().Intern(ApplySubstitution(freeze, t).name()));
    }
    StatusOr<Relation> lhs = EvaluateGoal(program, "p", db);
    StatusOr<Relation> rhs = EvaluateUcq(theta, db);
    ASSERT_TRUE(lhs.ok());
    ASSERT_TRUE(rhs.ok());
    EXPECT_TRUE(lhs->Contains(goal_tuple));
    EXPECT_FALSE(rhs->Contains(goal_tuple));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ContainmentPropertyTest,
                         ::testing::Range(0, 60));

// --- CQ containment vs engine evaluation -------------------------------

ConjunctiveQuery RandomCq(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> atom_count(1, 3);
  std::vector<Atom> body;
  int atoms = atom_count(rng);
  for (int a = 0; a < atoms; ++a) body.push_back(RandomEdbAtom(rng));
  return ConjunctiveQuery({Term::Variable("X"), Term::Variable("Y")},
                          std::move(body));
}

class CqContainmentPropertyTest : public ::testing::TestWithParam<int> {};

// Theorem 2.2's two directions checked against evaluation: if θ ⊆ ψ is
// claimed, evaluation respects it on random databases; if refuted, the
// canonical database of θ separates them.
TEST_P(CqContainmentPropertyTest, MappingVerdictMatchesEvaluation) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  ConjunctiveQuery theta = RandomCq(rng);
  ConjunctiveQuery psi = RandomCq(rng);
  SCOPED_TRACE(StrCat("theta: ", theta.ToString(), "\npsi: ",
                      psi.ToString()));
  bool contained = IsCqContained(theta, psi);

  UnionOfCqs theta_union;
  theta_union.Add(theta);
  UnionOfCqs psi_union;
  psi_union.Add(psi);
  std::map<std::string, std::size_t> signature{
      {"e", 2}, {"f", 1}, {"g", 2}};
  bool refuted = false;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RandomDbOptions options;
    options.seed = seed;
    options.domain_size = 3;
    options.tuples_per_relation = 5;
    Database db = RandomDatabase(signature, options);
    StatusOr<Relation> lhs = EvaluateUcq(theta_union, db);
    StatusOr<Relation> rhs = EvaluateUcq(psi_union, db);
    ASSERT_TRUE(lhs.ok());
    ASSERT_TRUE(rhs.ok());
    for (const Tuple& tuple : lhs->tuples()) {
      if (!rhs->Contains(tuple)) refuted = true;
      if (contained) {
        EXPECT_TRUE(rhs->Contains(tuple)) << "db seed " << seed;
      }
    }
  }
  if (refuted) {
    EXPECT_FALSE(contained);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCqPairs, CqContainmentPropertyTest,
                         ::testing::Range(0, 80));

// --- minimization invariants -------------------------------------------

class MinimizePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MinimizePropertyTest, CoreIsEquivalentAndNoLarger) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 3);
  ConjunctiveQuery cq = RandomCq(rng);
  ConjunctiveQuery core = MinimizeCq(cq);
  EXPECT_LE(core.body().size(), cq.body().size());
  EXPECT_TRUE(IsCqContained(cq, core));
  EXPECT_TRUE(IsCqContained(core, cq));
  // Idempotent.
  EXPECT_EQ(MinimizeCq(core).body().size(), core.body().size());
}

INSTANTIATE_TEST_SUITE_P(RandomCqs, MinimizePropertyTest,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace datalog
