// Round-trip and rejection tests for the binary corpus format
// (src/corpus/format.h): randomized corpora must serialize and
// deserialize bit-identically (dictionary order, atom spans, flags),
// and truncated or corrupted input must be rejected with a diagnostic
// before any instance decodes.
#include "src/corpus/format.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "src/corpus/generate.h"
#include "tests/test_util.h"

namespace datalog {
namespace corpus {
namespace {

void ExpectInstancesEqual(const CorpusInstance& want,
                          const CorpusInstance& got) {
  EXPECT_EQ(want.id, got.id);
  EXPECT_EQ(want.flags, got.flags);
  EXPECT_EQ(want.goal, got.goal);
  EXPECT_TRUE(want.program == got.program)
      << "want:\n"
      << want.program.ToString() << "got:\n"
      << got.program.ToString();
  ASSERT_EQ(want.theta.size(), got.theta.size());
  for (std::size_t i = 0; i < want.theta.size(); ++i) {
    EXPECT_TRUE(want.theta.disjuncts()[i] == got.theta.disjuncts()[i])
        << "disjunct " << i << ": want " << want.theta.disjuncts()[i].ToString()
        << " got " << got.theta.disjuncts()[i].ToString();
  }
}

// Serializes, reads back, re-serializes through a fresh writer, and
// requires byte equality plus field equality of every decoded instance.
void ExpectRoundTripBitIdentical(const std::vector<CorpusInstance>& instances) {
  CorpusWriter writer;
  for (const CorpusInstance& instance : instances) writer.Add(instance);
  std::string bytes = writer.Serialize();

  StatusOr<CorpusReader> reader = CorpusReader::FromBytes(bytes);
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_EQ(reader->size(), instances.size());

  CorpusWriter again;
  for (std::size_t i = 0; i < reader->size(); ++i) {
    StatusOr<CorpusInstance> decoded = reader->Decode(i);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ExpectInstancesEqual(instances[i], *decoded);
    again.Add(*decoded);
  }
  EXPECT_EQ(bytes, again.Serialize());
}

// A structurally diverse hand-built batch: empty program, empty theta,
// 0-ary atoms, constants, and dictionary-hostile spellings ('@' and '$'
// prefixed names are meaningful elsewhere in the repo and must survive
// as raw bytes here).
std::vector<CorpusInstance> HandBuiltInstances() {
  std::vector<CorpusInstance> instances;

  CorpusInstance tc;
  tc.id = 7;
  tc.flags = kFlagForwardResolved | kFlagForwardContained;
  tc.program = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  tc.goal = "p";
  tc.theta.Add(MustParseCq("q(X, Y) :- e(X, Y)."));
  tc.theta.Add(MustParseCq("q(X, Y) :- e(X, Z), e(Z, Y)."));
  instances.push_back(tc);

  CorpusInstance odd;
  odd.id = 0xffffffffffull;
  odd.flags = kFlagInvalid;
  odd.program.AddRule(
      Rule(Atom("w", {}), {Atom("@frozen", {Term::Constant("@v0")}),
                           Atom("$sym", {Term::Variable("$1")})}));
  odd.goal = "w";
  instances.push_back(odd);  // empty theta

  CorpusInstance empty;
  empty.id = 1;
  empty.goal = "nothing";
  empty.theta.Add(ConjunctiveQuery({Term::Variable("X")}, {}));
  instances.push_back(empty);  // empty program, body-free disjunct

  return instances;
}

// Seeded random instances exercising the span walker: random arities,
// variable/constant mixes, shared and fresh names.
std::vector<CorpusInstance> RandomInstances(std::uint64_t seed,
                                            std::size_t count) {
  std::mt19937_64 rng(seed);
  const std::vector<std::string> names = {"p", "q",  "e",     "edge",
                                          "a", "@c", "weird", "x$y"};
  auto pick_name = [&]() { return names[rng() % names.size()]; };
  auto random_term = [&]() {
    return rng() % 2 == 0 ? Term::Variable(pick_name())
                          : Term::Constant(pick_name());
  };
  auto random_atom = [&]() {
    std::vector<Term> args;
    std::size_t arity = rng() % 4;
    args.reserve(arity);
    for (std::size_t i = 0; i < arity; ++i) args.push_back(random_term());
    return Atom(pick_name(), std::move(args));
  };

  std::vector<CorpusInstance> instances;
  instances.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    CorpusInstance instance;
    instance.id = rng();
    instance.flags = static_cast<std::uint32_t>(rng() & 0x3fu);
    instance.goal = pick_name();
    std::size_t num_rules = rng() % 4;
    for (std::size_t r = 0; r < num_rules; ++r) {
      std::vector<Atom> body;
      std::size_t body_count = rng() % 3;
      for (std::size_t b = 0; b < body_count; ++b) {
        body.push_back(random_atom());
      }
      instance.program.AddRule(Rule(random_atom(), std::move(body)));
    }
    std::size_t num_disjuncts = rng() % 3;
    for (std::size_t d = 0; d < num_disjuncts; ++d) {
      std::vector<Term> head;
      std::size_t head_arity = rng() % 3;
      for (std::size_t h = 0; h < head_arity; ++h) {
        head.push_back(random_term());
      }
      std::vector<Atom> body;
      std::size_t body_count = rng() % 3;
      for (std::size_t b = 0; b < body_count; ++b) {
        body.push_back(random_atom());
      }
      instance.theta.Add(ConjunctiveQuery(std::move(head), std::move(body)));
    }
    instances.push_back(std::move(instance));
  }
  return instances;
}

// Rewrites one byte and refreshes the checksum trailer, so the
// corruption reaches the structural validator instead of tripping the
// checksum comparison.
std::string CorruptByteRefreshChecksum(std::string bytes, std::size_t offset,
                                       char value) {
  bytes[offset] = value;
  std::string body = bytes.substr(0, bytes.size() - 8);
  std::uint64_t checksum = Fnv1a64(body);
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[body.size() + i] = static_cast<char>((checksum >> (8 * i)) & 0xffu);
  }
  return bytes;
}

TEST(CorpusFormatTest, HandBuiltRoundTripBitIdentical) {
  ExpectRoundTripBitIdentical(HandBuiltInstances());
}

TEST(CorpusFormatTest, RandomizedRoundTripBitIdentical) {
  for (std::uint64_t seed : {1ull, 42ull, 20260808ull}) {
    ExpectRoundTripBitIdentical(RandomInstances(seed, 60));
  }
}

TEST(CorpusFormatTest, GeneratorCorpusRoundTripBitIdentical) {
  CorpusGenOptions options;
  options.seed = 11;
  options.count = 120;
  ExpectRoundTripBitIdentical(GenerateCorpus(options));
  ExpectRoundTripBitIdentical(GoldenCorpus());
}

TEST(CorpusFormatTest, SameSeedSerializesIdentically) {
  CorpusGenOptions options;
  options.seed = 99;
  options.count = 80;
  CorpusWriter first;
  for (const CorpusInstance& instance : GenerateCorpus(options)) {
    first.Add(instance);
  }
  CorpusWriter second;
  for (const CorpusInstance& instance : GenerateCorpus(options)) {
    second.Add(instance);
  }
  EXPECT_EQ(first.Serialize(), second.Serialize());
}

TEST(CorpusFormatTest, TruncationsRejectedWithDiagnostics) {
  CorpusWriter writer;
  for (const CorpusInstance& instance : HandBuiltInstances()) {
    writer.Add(instance);
  }
  std::string bytes = writer.Serialize();
  for (std::size_t length :
       {std::size_t{0}, std::size_t{4}, std::size_t{9}, bytes.size() / 2,
        bytes.size() - 9, bytes.size() - 1}) {
    StatusOr<CorpusReader> reader =
        CorpusReader::FromBytes(bytes.substr(0, length));
    EXPECT_FALSE(reader.ok()) << "prefix of " << length << " bytes accepted";
    EXPECT_NE(reader.status().message().find("corpus:"), std::string::npos)
        << reader.status();
  }
}

TEST(CorpusFormatTest, CorruptionsRejectedWithDiagnostics) {
  CorpusWriter writer;
  for (const CorpusInstance& instance : HandBuiltInstances()) {
    writer.Add(instance);
  }
  std::string bytes = writer.Serialize();

  // A flipped payload byte without a refreshed trailer is bit rot: the
  // checksum comparison must catch it.
  {
    std::string corrupt = bytes;
    corrupt[corrupt.size() / 2] = static_cast<char>(
        static_cast<unsigned char>(corrupt[corrupt.size() / 2]) ^ 0x5a);
    StatusOr<CorpusReader> reader = CorpusReader::FromBytes(corrupt);
    ASSERT_FALSE(reader.ok());
    EXPECT_NE(reader.status().message().find("checksum mismatch"),
              std::string::npos)
        << reader.status();
  }
  // Bad magic (checksum refreshed so the header check sees it).
  {
    StatusOr<CorpusReader> reader = CorpusReader::FromBytes(
        CorruptByteRefreshChecksum(bytes, 0, 'X'));
    ASSERT_FALSE(reader.ok());
    EXPECT_NE(reader.status().message().find("bad magic"), std::string::npos)
        << reader.status();
  }
  // Unsupported version.
  {
    StatusOr<CorpusReader> reader = CorpusReader::FromBytes(
        CorruptByteRefreshChecksum(bytes, 4, 0x7f));
    ASSERT_FALSE(reader.ok());
    EXPECT_NE(reader.status().message().find("unsupported version"),
              std::string::npos)
        << reader.status();
  }
  // Nonzero reserved field.
  {
    StatusOr<CorpusReader> reader = CorpusReader::FromBytes(
        CorruptByteRefreshChecksum(bytes, 20, 1));
    ASSERT_FALSE(reader.ok());
    EXPECT_NE(reader.status().message().find("reserved"), std::string::npos)
        << reader.status();
  }
  // An implausible dictionary size fails the structural walk with an
  // offset-bearing diagnostic rather than an allocation.
  {
    StatusOr<CorpusReader> reader = CorpusReader::FromBytes(
        CorruptByteRefreshChecksum(bytes, 19, 0x7f));
    ASSERT_FALSE(reader.ok());
    EXPECT_NE(reader.status().message().find("corpus:"), std::string::npos)
        << reader.status();
  }
}

TEST(CorpusFormatTest, DecodeOutOfRangeRejected) {
  CorpusWriter writer;
  writer.Add(HandBuiltInstances()[0]);
  StatusOr<CorpusReader> reader = CorpusReader::FromBytes(writer.Serialize());
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_FALSE(reader->Decode(1).ok());
}

TEST(CorpusFormatTest, EmptyCorpusRoundTrips) {
  ExpectRoundTripBitIdentical({});
}

}  // namespace
}  // namespace corpus
}  // namespace datalog
