// The canonical-database bridge differential: the ProgramIr → engine
// dictionary handoff (FreezeDisjunctIntoDatabase) must produce a database
// identical to the Term-level FreezeCq + AddFactAtom arm — the same
// predicates, the same constant spellings under the same ids (interning
// order included), the same facts tuple for tuple, and the same frozen
// goal tuple — so the downstream containment verdicts are byte-identical.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/containment/equivalence.h"
#include "src/containment/ucq_in_datalog.h"
#include "src/cq/canonical_db.h"
#include "src/engine/database.h"
#include "src/generators/examples.h"
#include "src/ir/ir.h"
#include "src/trees/enumerate.h"
#include "src/util/strings.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

// Rebuilds the string arm of the freeze exactly as ucq_in_datalog's
// ablation path does: frozen Atoms through AddFactAtom, goal terms
// interned afterwards.
Tuple FreezeViaStrings(const ConjunctiveQuery& cq, Database* db) {
  CanonicalDatabase frozen = FreezeCq(cq);
  for (const Atom& fact : frozen.facts) {
    Status s = db->AddFactAtom(fact);
    EXPECT_TRUE(s.ok()) << s;
  }
  Tuple goal;
  for (const Term& t : frozen.goal_tuple) {
    goal.push_back(db->dictionary().Intern(t.name()));
  }
  return goal;
}

void ExpectSameDatabase(const Database& a, const Database& b,
                        const std::string& label) {
  ASSERT_EQ(a.predicates().size(), b.predicates().size()) << label;
  for (PredicateId p = 0; p < static_cast<PredicateId>(a.predicates().size());
       ++p) {
    EXPECT_EQ(a.predicates().NameOf(p), b.predicates().NameOf(p)) << label;
    EXPECT_EQ(a.predicates().ArityOf(p), b.predicates().ArityOf(p)) << label;
    EXPECT_EQ(a.RelationOf(p).SortedTuples(), b.RelationOf(p).SortedTuples())
        << label << " relation " << a.predicates().NameOf(p);
  }
  ASSERT_EQ(a.dictionary().size(), b.dictionary().size()) << label;
  for (int c = 0; c < static_cast<int>(a.dictionary().size()); ++c) {
    EXPECT_EQ(a.dictionary().NameOf(c), b.dictionary().NameOf(c)) << label;
  }
}

TEST(CanonicalDbBridgeTest, HandoffMatchesStringFreezeOnHandPickedShapes) {
  // Shapes that stress the encoding edges: constants in bodies and heads,
  // repeated variables, head-only variables, and empty bodies.
  std::vector<std::string> cases = {
      "q(X, Y) :- e(X, Z), e(Z, Y).",
      "q(X) :- e(root, X), e(X, X).",
      "q(X, X) :- e(X, X).",
      "q(X, Y) :- .",
      "q(a, X) :- e(a, X), f(X, b, X).",
      "q(X) :- e(X, Y), e(Y, Z), f(Z, X, Y).",
  };
  for (const std::string& text : cases) {
    ConjunctiveQuery cq = MustParseCq(text);
    UnionOfCqs single;
    single.Add(cq);
    Database via_strings;
    Tuple goal_strings = FreezeViaStrings(cq, &via_strings);
    Database via_ir;
    Tuple goal_ir =
        FreezeDisjunctIntoDatabase(*ir::CarriedIr(single), 0, &via_ir);
    ExpectSameDatabase(via_strings, via_ir, text);
    EXPECT_EQ(goal_strings, goal_ir) << text;
  }
}

TEST(CanonicalDbBridgeTest, HandoffMatchesStringFreezeOnExpansions) {
  // Every bounded expansion of a few program families: realistic frozen
  // databases with shared variables across many atoms.
  struct Family {
    Program program;
    std::string goal;
  };
  std::vector<Family> families = {
      {Buys1Program(), "buys"},
      {TransitiveClosureProgram("e", "e"), "p"},
      {NonlinearTransitiveClosureProgram(), "p"},
  };
  for (const Family& family : families) {
    EnumerateOptions options;
    options.max_depth = 3;
    options.max_trees = 40;
    UnionOfCqs expansions =
        BoundedExpansions(family.program, family.goal, options);
    std::shared_ptr<ir::ProgramIr> carried = ir::CarriedIr(expansions);
    for (std::size_t i = 0; i < expansions.size(); ++i) {
      Database via_strings;
      Tuple goal_strings =
          FreezeViaStrings(expansions.disjuncts()[i], &via_strings);
      Database via_ir;
      Tuple goal_ir = FreezeDisjunctIntoDatabase(*carried, i, &via_ir);
      ExpectSameDatabase(via_strings, via_ir,
                         expansions.disjuncts()[i].ToString());
      EXPECT_EQ(goal_strings, goal_ir);
    }
  }
}

TEST(CanonicalDbBridgeTest, ContainmentVerdictsAgreeAcrossArms) {
  Program tc = TransitiveClosureProgram("e", "e");
  UnionOfCqs theta = PathQueries(3);
  theta.Add(MustParseCq("p(X, X) :- ."));
  theta.Add(MustParseCq("p(X, Y) :- ."));
  CanonicalDbOptions ir_arm;
  ir_arm.use_ir = true;
  CanonicalDbOptions string_arm;
  string_arm.use_ir = false;
  for (const ConjunctiveQuery& disjunct : theta.disjuncts()) {
    StatusOr<bool> a =
        IsCqContainedInDatalog(disjunct, tc, "p", nullptr, ir_arm);
    StatusOr<bool> b =
        IsCqContainedInDatalog(disjunct, tc, "p", nullptr, string_arm);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << disjunct.ToString();
  }
  std::size_t failing_ir = 999;
  std::size_t failing_str = 999;
  StatusOr<bool> all_ir = IsUcqContainedInDatalog(theta, tc, "p", nullptr,
                                                  ir_arm, &failing_ir);
  StatusOr<bool> all_str = IsUcqContainedInDatalog(theta, tc, "p", nullptr,
                                                   string_arm, &failing_str);
  ASSERT_TRUE(all_ir.ok() && all_str.ok());
  EXPECT_EQ(*all_ir, *all_str);
  EXPECT_EQ(failing_ir, failing_str);
}

TEST(CanonicalDbBridgeTest, DisjunctLevelCallReusesCarriedUnionIr) {
  // The entry for drivers that loop single CQs: checking disjuncts
  // through the union pays one interning pass for the whole loop —
  // not a throwaway singleton IR per call — and agrees with the
  // bare-CQ call disjunct for disjunct.
  Program tc = TransitiveClosureProgram("e", "e");
  UnionOfCqs theta = PathQueries(3);
  theta.Add(MustParseCq("p(X, Y) :- ."));
  ir::CarriedIr(theta);  // prime the carrier
  const std::size_t builds_before = ir::ProgramIrBuildCount();
  for (std::size_t i = 0; i < theta.size(); ++i) {
    StatusOr<bool> via_union =
        IsUcqDisjunctContainedInDatalog(theta, i, tc, "p");
    StatusOr<bool> via_cq =
        IsCqContainedInDatalog(theta.disjuncts()[i], tc, "p");
    ASSERT_TRUE(via_union.ok() && via_cq.ok());
    EXPECT_EQ(*via_union, *via_cq) << theta.disjuncts()[i].ToString();
  }
  EXPECT_EQ(ir::ProgramIrBuildCount(), builds_before);
}

TEST(CanonicalDbBridgeTest, ParallelDriversMatchSerialVerdicts) {
  // The decider differential with a parallel engine underneath: the
  // union-level driver at several thread counts — which exercises both
  // the disjunct fan-out and, via num_threads on a single-disjunct
  // union, the engine's staged parallel rounds — must reproduce the
  // serial verdicts, failing-disjunct indexes, and per-relation facts.
  Program tc = TransitiveClosureProgram("e", "e");
  struct Case {
    const char* name;
    UnionOfCqs theta;
  };
  std::vector<Case> cases;
  {
    cases.push_back({"contained", PathQueries(3)});
    UnionOfCqs mixed = PathQueries(2);
    mixed.Add(MustParseCq("p(X, Y) :- f(X, Y)."));  // first failure: index 2
    mixed.Add(MustParseCq("p(X, Y) :- g(X, Y)."));
    cases.push_back({"fails_mid_union", mixed});
    UnionOfCqs single;
    single.Add(MustParseCq("p(X, Y) :- e(X, Z), e(Z, Y)."));
    cases.push_back({"single_disjunct", single});
  }
  for (Case& c : cases) {
    std::size_t serial_failing = 999;
    EvalStats serial_stats;
    StatusOr<bool> serial = IsUcqContainedInDatalog(
        c.theta, tc, "p", &serial_stats, CanonicalDbOptions(),
        &serial_failing);
    ASSERT_TRUE(serial.ok()) << c.name;
    for (int threads : {2, 4, 0}) {
      for (bool use_ir : {true, false}) {
        CanonicalDbOptions options;
        options.use_ir = use_ir;
        options.eval.num_threads = threads;
        std::size_t failing = 999;
        EvalStats stats;
        StatusOr<bool> parallel = IsUcqContainedInDatalog(
            c.theta, tc, "p", &stats, options, &failing);
        ASSERT_TRUE(parallel.ok()) << c.name;
        EXPECT_EQ(*parallel, *serial)
            << c.name << " threads=" << threads << " use_ir=" << use_ir;
        EXPECT_EQ(failing, serial_failing)
            << c.name << " threads=" << threads << " use_ir=" << use_ir;
        EXPECT_EQ(stats.facts_derived, serial_stats.facts_derived)
            << c.name << " threads=" << threads << " use_ir=" << use_ir;
      }
    }
  }
}

TEST(CanonicalDbBridgeTest, ParallelBackwardEquivalenceMatchesSerial) {
  // The full rec/nonrec equivalence pipeline with the parallel
  // canonical-database backward direction underneath.
  EquivalenceOptions parallel;
  parallel.canonical_db.eval.num_threads = 4;
  for (bool positive : {true, false}) {
    Program rec = positive ? Buys1Program() : Buys2Program();
    Program nonrec =
        positive ? Buys1NonrecursiveProgram() : Buys2NonrecursiveProgram();
    StatusOr<EquivalenceResult> serial =
        DecideRecNonrecEquivalence(rec, "buys", nonrec, "buys");
    StatusOr<EquivalenceResult> par = DecideRecNonrecEquivalence(
        rec, "buys", nonrec, "buys", parallel);
    ASSERT_TRUE(serial.ok() && par.ok());
    EXPECT_EQ(par->equivalent, serial->equivalent);
    EXPECT_EQ(par->forward_contained, serial->forward_contained);
    EXPECT_EQ(par->backward_contained, serial->backward_contained);
    EXPECT_EQ(par->backward_counterexample.has_value(),
              serial->backward_counterexample.has_value());
    EXPECT_EQ(par->backward_eval_stats.facts_derived,
              serial->backward_eval_stats.facts_derived);
  }
}

TEST(CanonicalDbBridgeTest, UnionCallReusesCarriedIr) {
  Program tc = TransitiveClosureProgram("e", "e");
  UnionOfCqs theta = PathQueries(2);
  EXPECT_FALSE(theta.has_carried_ir());
  StatusOr<bool> first = IsUcqContainedInDatalog(theta, tc, "p");
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(theta.has_carried_ir());
  // A second call on the same (unmutated) union re-interns nothing.
  std::size_t builds_before = ir::ProgramIrBuildCount();
  StatusOr<bool> second = IsUcqContainedInDatalog(theta, tc, "p");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(ir::ProgramIrBuildCount(), builds_before);
  EXPECT_EQ(*first, *second);
  // Mutation drops the carried IR.
  theta.Add(MustParseCq("p(X, Y) :- e(X, Y)."));
  EXPECT_FALSE(theta.has_carried_ir());
}

}  // namespace
}  // namespace datalog
