#include <gtest/gtest.h>

#include "src/containment/ucq_in_datalog.h"
#include "src/generators/examples.h"
#include "src/util/thread_pool.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

bool MustCheck(const ConjunctiveQuery& theta, const Program& program,
               const std::string& goal) {
  StatusOr<bool> result = IsCqContainedInDatalog(theta, program, goal);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

TEST(UcqInDatalogTest, PathsAreContainedInTransitiveClosure) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  EXPECT_TRUE(MustCheck(ChainQuery(1), tc, "p"));
  EXPECT_TRUE(MustCheck(ChainQuery(2), tc, "p"));
  EXPECT_TRUE(MustCheck(ChainQuery(5), tc, "p"));
}

TEST(UcqInDatalogTest, NonPathsAreNotContained) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  // A disconnected pair of edges does not witness a path from X to Y.
  EXPECT_FALSE(
      MustCheck(MustParseCq("p(X, Y) :- e(X, A), e(B, Y)."), tc, "p"));
  // Wrong predicate.
  EXPECT_FALSE(MustCheck(MustParseCq("p(X, Y) :- f(X, Y)."), tc, "p"));
}

TEST(UcqInDatalogTest, QueryStrongerThanNeededIsContained) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  // Extra atoms only strengthen the query.
  EXPECT_TRUE(MustCheck(
      MustParseCq("p(X, Y) :- e(X, Y), g(X), g(Y)."), tc, "p"));
}

TEST(UcqInDatalogTest, Example11BackwardDirections) {
  // The nonrecursive buys1 rewriting is contained in buys1.
  Program buys1 = Buys1Program();
  EXPECT_TRUE(MustCheck(MustParseCq("b(X, Y) :- likes(X, Y)."), buys1,
                        "buys"));
  EXPECT_TRUE(MustCheck(
      MustParseCq("b(X, Y) :- trendy(X), likes(Z, Y)."), buys1, "buys"));
  // Similarly for buys2 (the failing direction of Example 1.1 is the
  // forward one; backward holds).
  Program buys2 = Buys2Program();
  EXPECT_TRUE(MustCheck(
      MustParseCq("b(X, Y) :- knows(X, Z), likes(Z, Y)."), buys2, "buys"));
}

TEST(UcqInDatalogTest, ConstantsInQuery) {
  Program reach = MustParseProgram(R"(
    r(X) :- e(root, X).
    r(X) :- r(Y), e(Y, X).
  )");
  EXPECT_TRUE(MustCheck(MustParseCq("q(X) :- e(root, X)."), reach, "r"));
  EXPECT_TRUE(MustCheck(
      MustParseCq("q(X) :- e(root, A), e(A, X)."), reach, "r"));
  EXPECT_FALSE(MustCheck(MustParseCq("q(X) :- e(other, X)."), reach, "r"));
}

TEST(UcqInDatalogTest, UnionContainedIffEveryDisjunctIs) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  UnionOfCqs good = PathQueries(3);
  StatusOr<bool> all_good = IsUcqContainedInDatalog(good, tc, "p");
  ASSERT_TRUE(all_good.ok());
  EXPECT_TRUE(*all_good);

  UnionOfCqs mixed = PathQueries(2);
  mixed.Add(MustParseCq("p(X, Y) :- f(X, Y)."));
  StatusOr<bool> not_all = IsUcqContainedInDatalog(mixed, tc, "p");
  ASSERT_TRUE(not_all.ok());
  EXPECT_FALSE(*not_all);
}

// EvalStats audit: checking each disjunct individually through
// IsUcqDisjunctContainedInDatalog and folding the per-disjunct stats
// with Accumulate must equal the whole-union run's recount, field for
// field — including the planner counters (plans_cached, plans_rebuilt,
// est_cost_total), which Accumulate must cover. An all-contained union
// is used so the whole-run loop does not short-circuit.
TEST(UcqInDatalogTest, PerDisjunctStatsAccumulateToWholeRunRecount) {
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  UnionOfCqs good = PathQueries(4);
  EvalStats whole;
  StatusOr<bool> all = IsUcqContainedInDatalog(good, tc, "p", &whole);
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(*all);

  EvalStats accumulated;
  for (std::size_t d = 0; d < good.size(); ++d) {
    EvalStats per_disjunct;
    StatusOr<bool> got =
        IsUcqDisjunctContainedInDatalog(good, d, tc, "p", &per_disjunct);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(*got);
    accumulated.Accumulate(per_disjunct);
  }
  EXPECT_EQ(accumulated.iterations, whole.iterations);
  EXPECT_EQ(accumulated.facts_derived, whole.facts_derived);
  EXPECT_EQ(accumulated.join_probes, whole.join_probes);
  EXPECT_EQ(accumulated.index_probes, whole.index_probes);
  EXPECT_EQ(accumulated.index_builds, whole.index_builds);
  EXPECT_EQ(accumulated.tuples_indexed, whole.tuples_indexed);
  EXPECT_EQ(accumulated.rounds_parallel, whole.rounds_parallel);
  EXPECT_EQ(accumulated.tuples_staged, whole.tuples_staged);
  EXPECT_EQ(accumulated.merge_collisions, whole.merge_collisions);
  EXPECT_EQ(accumulated.strata, whole.strata);
  EXPECT_EQ(accumulated.rounds_saved, whole.rounds_saved);
  EXPECT_EQ(accumulated.plans_cached, whole.plans_cached);
  EXPECT_EQ(accumulated.plans_rebuilt, whole.plans_rebuilt);
  EXPECT_EQ(accumulated.est_cost_total, whole.est_cost_total);
}

TEST(UcqInDatalogTest, CallerSuppliedPoolMatchesSequential) {
  // A caller-owned ThreadPool amortizes thread spawns across repeated
  // union-level checks; the verdict, failing disjunct, and stats must
  // match both the per-call pool and the sequential loop.
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  UnionOfCqs mixed = PathQueries(3);
  mixed.Add(MustParseCq("p(X, Y) :- f(X, Y)."));

  CanonicalDbOptions sequential;
  sequential.eval.num_threads = 1;
  EvalStats seq_stats;
  std::size_t seq_failing = 0;
  StatusOr<bool> seq = IsUcqContainedInDatalog(mixed, tc, "p", &seq_stats,
                                               sequential, &seq_failing);
  ASSERT_TRUE(seq.ok());

  ThreadPool pool(4);
  CanonicalDbOptions pooled;
  pooled.eval.num_threads = 4;
  pooled.pool = &pool;
  for (int repeat = 0; repeat < 3; ++repeat) {
    EvalStats pool_stats;
    std::size_t pool_failing = 0;
    StatusOr<bool> got = IsUcqContainedInDatalog(
        mixed, tc, "p", &pool_stats, pooled, &pool_failing);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *seq);
    EXPECT_EQ(pool_failing, seq_failing);
    EXPECT_EQ(pool_stats.iterations, seq_stats.iterations);
    EXPECT_EQ(pool_stats.facts_derived, seq_stats.facts_derived);
  }

  UnionOfCqs good = PathQueries(3);
  StatusOr<bool> all_good =
      IsUcqContainedInDatalog(good, tc, "p", nullptr, pooled);
  ASSERT_TRUE(all_good.ok());
  EXPECT_TRUE(*all_good);
}

TEST(UcqInDatalogTest, HeadOnlyVariableQuery) {
  // theta(X, Y) :- e(X, Z): Y is unconstrained (active domain).
  // The canonical database is {e(@X, @Z)} with domain {@X, @Y, @Z}; the
  // program derives p-facts only along e-edges, so (X, Y) is not derived.
  Program tc = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  EXPECT_FALSE(MustCheck(MustParseCq("p(X, Y) :- e(X, Z)."), tc, "p"));
}

}  // namespace
}  // namespace datalog
