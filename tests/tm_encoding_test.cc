#include <gtest/gtest.h>

#include "src/ast/analysis.h"
#include "src/containment/decider.h"
#include "src/tm/tm_encoding.h"
#include "src/trees/strong_mapping.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

TmEncoding MustEncode(const TuringMachine& tm, int n) {
  StatusOr<TmEncoding> encoding = EncodeLinearTmContainment(tm, n);
  EXPECT_TRUE(encoding.ok()) << encoding.status();
  return *encoding;
}

TEST(TmEncodingTest, StructuralProperties) {
  TuringMachine tm = AcceptAfterOneStepMachine();
  for (int n = 1; n <= 3; ++n) {
    TmEncoding encoding = MustEncode(tm, n);
    EXPECT_TRUE(encoding.program.Validate().ok());
    EXPECT_TRUE(IsRecursive(encoding.program));
    // The §5.3 construction is a LINEAR program.
    EXPECT_TRUE(IsLinear(encoding.program));
    EXPECT_TRUE(IsLinearInIdb(encoding.program));
    // Queries are Boolean.
    for (const ConjunctiveQuery& q : encoding.queries.disjuncts()) {
      EXPECT_EQ(q.arity(), 0u);
      EXPECT_FALSE(q.body().empty());
    }
    // Query count grows linearly in n for the addressing families (the
    // transition families are fixed per machine).
    EXPECT_GT(encoding.queries.size(), static_cast<std::size_t>(4 * n));
  }
}

TEST(TmEncodingTest, QueryCountGrowsLinearlyInN) {
  TuringMachine tm = ImmediatelyAcceptingMachine();
  std::size_t previous = 0;
  std::size_t previous_delta = 0;
  for (int n = 1; n <= 4; ++n) {
    TmEncoding encoding = MustEncode(tm, n);
    std::size_t count = encoding.queries.size();
    if (n >= 2) {
      std::size_t delta = count - previous;
      if (n >= 3) {
        // Linear growth: constant per-n increment.
        EXPECT_EQ(delta, previous_delta) << "n=" << n;
      }
      previous_delta = delta;
    }
    previous = count;
  }
}

// The headline property of the §5.3 reduction (Theorem 5.15):
// Π ⊆ Θ iff M does not accept. Validated against the simulator on micro
// machines with n = 1 (two tape cells).
void CheckReduction(const TuringMachine& tm, bool expect_contained) {
  ASSERT_EQ(SimulateOnEmptyTape(tm, 2) == TmVerdict::kAccepts,
            !expect_contained)
      << "test machine's simulator verdict disagrees with expectation";
  TmEncoding encoding = MustEncode(tm, 1);
  ContainmentOptions options;
  options.limits.max_states = 2'000'000;
  StatusOr<ContainmentDecision> decision = DecideDatalogInUcq(
      encoding.program, encoding.goal, encoding.queries, options);
  ASSERT_TRUE(decision.ok()) << decision.status();
  EXPECT_EQ(decision->contained, expect_contained);
  if (!decision->contained && decision->counterexample.has_value()) {
    // The counterexample encodes an accepting computation: a proof tree
    // avoiding every error query.
    EXPECT_TRUE(
        ValidateProofTree(encoding.program, *decision->counterexample).ok());
    EXPECT_FALSE(AnyDisjunctMapsStrongly(
        encoding.program, *decision->counterexample, encoding.queries));
  }
}

TEST(TmEncodingTest, ImmediatelyAcceptingMachineIsNotContained) {
  CheckReduction(ImmediatelyAcceptingMachine(), /*expect_contained=*/false);
}

TEST(TmEncodingTest, LoopingMachineIsContained) {
  CheckReduction(LoopsInPlaceMachine(), /*expect_contained=*/true);
}

TEST(TmEncodingTest, RunsOffTheTapeMachineIsContained) {
  CheckReduction(RunsOffTheTapeMachine(), /*expect_contained=*/true);
}

// Machines whose accepting run spans several configurations (e.g.
// AcceptAfterOneStepMachine) are decided correctly as well, but the
// counterexample search must assemble a full multi-configuration
// computation encoding and takes minutes — beyond the test budget. Both
// verdict directions are already covered above; the instance-size scaling
// of the reduction is measured in bench_tm_reduction.

}  // namespace
}  // namespace datalog
