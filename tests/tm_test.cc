#include <gtest/gtest.h>

#include "src/tm/tm.h"

namespace datalog {
namespace {

TEST(TmTest, ValidationCatchesBrokenMachines) {
  TuringMachine tm = ImmediatelyAcceptingMachine();
  EXPECT_TRUE(tm.Validate().ok());
  TuringMachine bad = tm;
  bad.initial_state = "nope";
  EXPECT_FALSE(bad.Validate().ok());
  bad = tm;
  bad.blank = "missing";
  EXPECT_FALSE(bad.Validate().ok());
  bad = tm;
  bad.accepting_states = {"ghost"};
  EXPECT_FALSE(bad.Validate().ok());
  bad = tm;
  bad.delta[{"qa", "_"}] = {"ghost", "_", TmMove::kStay};
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(TmTest, ImmediateAccept) {
  EXPECT_EQ(SimulateOnEmptyTape(ImmediatelyAcceptingMachine(), 2),
            TmVerdict::kAccepts);
}

TEST(TmTest, AcceptAfterOneStep) {
  EXPECT_EQ(SimulateOnEmptyTape(AcceptAfterOneStepMachine(), 2),
            TmVerdict::kAccepts);
}

TEST(TmTest, RunsOffTheTape) {
  EXPECT_EQ(SimulateOnEmptyTape(RunsOffTheTapeMachine(), 2),
            TmVerdict::kOutOfSpace);
  // With more space it still eventually falls off the right end.
  EXPECT_EQ(SimulateOnEmptyTape(RunsOffTheTapeMachine(), 8),
            TmVerdict::kOutOfSpace);
}

TEST(TmTest, LoopDetected) {
  EXPECT_EQ(SimulateOnEmptyTape(LoopsInPlaceMachine(), 2),
            TmVerdict::kLoops);
}

TEST(TmTest, HaltWithoutAccepting) {
  TuringMachine tm;
  tm.states = {"q0"};
  tm.tape_symbols = {"_"};
  tm.initial_state = "q0";
  // No transitions, no accepting states: halts immediately.
  EXPECT_EQ(SimulateOnEmptyTape(tm, 2), TmVerdict::kHalts);
}

TEST(TmTest, BounceMachineAcceptsOnTwoCells) {
  EXPECT_EQ(SimulateOnEmptyTape(BounceAndAcceptMachine(), 2),
            TmVerdict::kAccepts);
}

TEST(TmTest, SimulatorRespectsWrites) {
  // Write a mark, move right, come back, and verify the mark changed the
  // branch taken: ql on blank (no transition) would halt, on mark accepts.
  TuringMachine tm = BounceAndAcceptMachine();
  // Sabotage: q0 writes blank instead of the mark.
  tm.delta[{"q0", "_"}] = {"qr", "_", TmMove::kRight};
  EXPECT_EQ(SimulateOnEmptyTape(tm, 2), TmVerdict::kHalts);
}

}  // namespace
}  // namespace datalog
