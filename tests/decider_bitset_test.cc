// Differential testing of the word-parallel bitset substrate: on program
// families crossed with fixed and randomized unions of bounded
// expansions, the decider's exact-bitset achieved-set path (interned pair
// ids, AntichainStore maintenance) must return byte-identical
// ContainmentDecisions — verdict, counterexample witness tree, state and
// goal counts, rounds, antichain prunes — to the Bloom-signature +
// sorted-vector path it replaced, with and without antichain pruning.
// NFA and NFTA containment get the same treatment: the Bitset frontier /
// AntichainStore arms must match the sorted-vector ablation arm verdict
// for verdict, counterexample for counterexample, and explored count for
// explored count, on fixed automata and on randomized ones.
#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "src/automata/nfa.h"
#include "src/automata/nfta.h"
#include "src/containment/decider.h"
#include "src/generators/examples.h"
#include "src/trees/enumerate.h"
#include "src/util/strings.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

// ---------------------------------------------------------------------
// Decider: use_bitsets on/off must be observationally identical.
// ---------------------------------------------------------------------

struct DeciderCase {
  std::string name;
  Program program;
  std::string goal;
  UnionOfCqs theta;
};

void ExpectSameDecision(const ContainmentDecision& bitset,
                        const ContainmentDecision& legacy,
                        const std::string& label) {
  EXPECT_EQ(bitset.contained, legacy.contained) << label;
  ASSERT_EQ(bitset.counterexample.has_value(),
            legacy.counterexample.has_value())
      << label;
  if (bitset.counterexample.has_value()) {
    EXPECT_EQ(bitset.counterexample->ToString(),
              legacy.counterexample->ToString())
        << label;
  }
  EXPECT_EQ(bitset.stats.states_discovered, legacy.stats.states_discovered)
      << label;
  EXPECT_EQ(bitset.stats.goals_discovered, legacy.stats.goals_discovered)
      << label;
  EXPECT_EQ(bitset.stats.rounds, legacy.stats.rounds) << label;
  EXPECT_EQ(bitset.stats.combine_calls, legacy.stats.combine_calls) << label;
  // Eviction decisions must agree state for state, so the prune counters
  // coincide even though the two arms count them in different code paths.
  EXPECT_EQ(bitset.stats.antichain_prunes, legacy.stats.antichain_prunes)
      << label;
  // The exact-bitset path never computes Bloom signatures.
  EXPECT_EQ(bitset.stats.subset_sig_rejects, 0u) << label;
}

void RunDifferential(const DeciderCase& c) {
  for (bool antichain : {true, false}) {
    ContainmentOptions with_bitsets;
    with_bitsets.use_bitsets = true;
    with_bitsets.antichain = antichain;
    ContainmentOptions without;
    without.use_bitsets = false;
    without.antichain = antichain;
    StatusOr<ContainmentDecision> a =
        DecideDatalogInUcq(c.program, c.goal, c.theta, with_bitsets);
    StatusOr<ContainmentDecision> b =
        DecideDatalogInUcq(c.program, c.goal, c.theta, without);
    ASSERT_EQ(a.ok(), b.ok()) << c.name;
    if (!b.ok()) {
      EXPECT_EQ(a.status().code(), b.status().code()) << c.name;
      continue;
    }
    ExpectSameDecision(
        *a, *b, StrCat(c.name, " antichain=", antichain ? 1 : 0));
  }
}

std::vector<DeciderCase> FixedCases() {
  std::vector<DeciderCase> cases;
  {
    UnionOfCqs theta;
    theta.Add(MustParseCq("buys(X, Y) :- likes(X, Y)."));
    theta.Add(MustParseCq("buys(X, Y) :- trendy(X), likes(Z, Y)."));
    cases.push_back({"buys1_rewriting", Buys1Program(), "buys", theta});
  }
  {
    UnionOfCqs theta;
    theta.Add(MustParseCq("buys(X, Y) :- likes(X, Y)."));
    theta.Add(MustParseCq("buys(X, Y) :- knows(X, Z), likes(Z, Y)."));
    cases.push_back({"buys2_attempt", Buys2Program(), "buys", theta});
  }
  {
    cases.push_back({"tc_paths3", TransitiveClosureProgram("e", "e"), "p",
                     PathQueries(3)});
  }
  {
    UnionOfCqs top;
    top.Add(MustParseCq("p(X, Y) :- ."));
    cases.push_back(
        {"tc_top", TransitiveClosureProgram("e", "e"), "p", top});
  }
  {
    cases.push_back({"nonlinear_tc_paths2",
                     NonlinearTransitiveClosureProgram(), "p",
                     PathQueries(2)});
  }
  {
    // Deep recursion: many achieved sets per goal, so the antichain does
    // real pruning work in both representations.
    cases.push_back({"nonlinear_tc_paths4",
                     NonlinearTransitiveClosureProgram(), "p",
                     PathQueries(4)});
  }
  {
    cases.push_back({"chain2_paths4", ChainProgram(2), "p", PathQueries(4)});
  }
  {
    cases.push_back({"dist3_paths3", DistProgram(3), "dist3", PathQueries(3)});
  }
  {
    UnionOfCqs empty;
    cases.push_back(
        {"tc_empty_union", TransitiveClosureProgram("e", "e"), "p", empty});
  }
  {
    Program reach = MustParseProgram(R"(
      r(X) :- e(root, X).
      r(X) :- r(Y), e(Y, X).
    )");
    UnionOfCqs from_root;
    from_root.Add(MustParseCq("r(X) :- e(root, X)."));
    cases.push_back({"constants_from_root", reach, "r", from_root});
  }
  return cases;
}

TEST(DeciderBitsetTest, FixedCasesAgreeWithSortedVectorBaseline) {
  for (const DeciderCase& c : FixedCases()) RunDifferential(c);
}

// Randomized pairs, mirroring the intern-memo differential harness: each
// seed picks a program family and a random subset of its bounded
// expansions as Θ, producing a mix of contained and non-contained
// instances with nontrivial achieved-set populations.
class DeciderBitsetRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DeciderBitsetRandomTest, RandomizedExpansionSubsetsAgree) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  std::mt19937_64 rng(seed * 6271 + 5);
  struct Family {
    std::string name;
    Program program;
    std::string goal;
  };
  std::vector<Family> families;
  families.push_back({"buys1", Buys1Program(), "buys"});
  families.push_back({"buys2", Buys2Program(), "buys"});
  families.push_back({"tc", TransitiveClosureProgram("e", "e"), "p"});
  families.push_back({"tc_nl", NonlinearTransitiveClosureProgram(), "p"});
  families.push_back({"chain2", ChainProgram(2), "p"});
  families.push_back({"dist3", DistProgram(3), "dist3"});
  const Family& family = families[seed % families.size()];
  EnumerateOptions enumerate;
  enumerate.max_depth = 1 + static_cast<std::size_t>(rng() % 3);
  enumerate.max_trees = 200;
  UnionOfCqs expansions =
      BoundedExpansions(family.program, family.goal, enumerate);
  UnionOfCqs theta;
  for (const ConjunctiveQuery& disjunct : expansions.disjuncts()) {
    if (rng() % 2 == 0) theta.Add(disjunct);
    if (theta.size() >= 6) break;  // keep the decider input small
  }
  if (rng() % 4 == 0) {
    std::vector<Term> head;
    for (std::size_t i = 0; i < family.program.PredicateArity(family.goal);
         ++i) {
      head.push_back(Term::Variable(StrCat("T", i)));
    }
    theta.Add(ConjunctiveQuery(std::move(head), {}));  // universal CQ
  }
  DeciderCase c{StrCat(family.name, "_seed", seed), family.program,
                family.goal, theta};
  RunDifferential(c);
}

INSTANTIATE_TEST_SUITE_P(RandomThetas, DeciderBitsetRandomTest,
                         ::testing::Range(0, 20));

// ---------------------------------------------------------------------
// NFA containment: Bitset frontiers/AntichainStore vs sorted vectors.
// ---------------------------------------------------------------------

void ExpectSameNfaContainment(const Nfa& a, const Nfa& b,
                              const std::string& label) {
  for (bool antichain : {true, false}) {
    Nfa::ContainmentOptions with_bitsets;
    with_bitsets.use_bitsets = true;
    with_bitsets.antichain = antichain;
    Nfa::ContainmentOptions without;
    without.use_bitsets = false;
    without.antichain = antichain;
    StatusOr<Nfa::ContainmentResult> x = Nfa::Contains(a, b, with_bitsets);
    StatusOr<Nfa::ContainmentResult> y = Nfa::Contains(a, b, without);
    ASSERT_EQ(x.ok(), y.ok()) << label;
    if (!y.ok()) continue;
    EXPECT_EQ(x->contained, y->contained)
        << label << " antichain=" << antichain;
    EXPECT_EQ(x->counterexample, y->counterexample)
        << label << " antichain=" << antichain;
    EXPECT_EQ(x->explored, y->explored)
        << label << " antichain=" << antichain;
  }
}

// The "k-th symbol from the end is 1" NFA: n+1 states, subset
// construction needs 2^n subsets, so containment checks exercise wide
// frontiers and heavy subset testing.
Nfa KthFromEnd(int n) {
  Nfa nfa(n + 1, 2);
  nfa.SetInitial(0);
  nfa.SetAccepting(n);
  nfa.AddTransition(0, 0, 0);
  nfa.AddTransition(0, 1, 0);
  nfa.AddTransition(0, 1, 1);
  for (int i = 1; i < n; ++i) {
    nfa.AddTransition(i, 0, i + 1);
    nfa.AddTransition(i, 1, i + 1);
  }
  return nfa;
}

Nfa RandomNfa(std::mt19937_64& rng, int states, int symbols,
              double density) {
  Nfa nfa(states, symbols);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  nfa.SetInitial(static_cast<int>(rng() % states));
  for (int s = 0; s < states; ++s) {
    if (coin(rng) < 0.3) nfa.SetAccepting(s);
    for (int sym = 0; sym < symbols; ++sym) {
      for (int t = 0; t < states; ++t) {
        if (coin(rng) < density) nfa.AddTransition(s, sym, t);
      }
    }
  }
  return nfa;
}

TEST(NfaBitsetDifferentialTest, KthFromEndSelfAndCrossContainment) {
  for (int n : {3, 5, 8}) {
    Nfa a = KthFromEnd(n);
    ExpectSameNfaContainment(a, a, StrCat("kth_self_n", n));
    // L(kth n+1) ⊄ L(kth n) and vice versa: both directions produce
    // counterexample searches.
    Nfa b = KthFromEnd(n + 1);
    ExpectSameNfaContainment(a, b, StrCat("kth_cross_a_n", n));
    ExpectSameNfaContainment(b, a, StrCat("kth_cross_b_n", n));
  }
}

TEST(NfaBitsetDifferentialTest, RandomizedAutomataAgree) {
  std::mt19937_64 rng(20260808);
  for (int trial = 0; trial < 40; ++trial) {
    int states = 2 + static_cast<int>(rng() % 7);
    int symbols = 1 + static_cast<int>(rng() % 3);
    Nfa a = RandomNfa(rng, states, symbols, 0.25);
    Nfa b = RandomNfa(rng, 2 + static_cast<int>(rng() % 7), symbols, 0.35);
    ExpectSameNfaContainment(a, b, StrCat("random_trial", trial));
  }
}

TEST(NfaBitsetDifferentialTest, DeterminizeAgreesWithLegacyLanguage) {
  // Determinize now interns Bitset subsets; the result must still accept
  // exactly the same words as the input.
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Nfa a = RandomNfa(rng, 2 + static_cast<int>(rng() % 5), 2, 0.3);
    StatusOr<Nfa> det = a.Determinize();
    ASSERT_TRUE(det.ok());
    std::vector<int> word;
    for (int len = 0; len <= 6; ++len) {
      // All words of length `len` over {0, 1}.
      for (int bits = 0; bits < (1 << len); ++bits) {
        word.clear();
        for (int i = 0; i < len; ++i) word.push_back((bits >> i) & 1);
        EXPECT_EQ(a.Accepts(word), det->Accepts(word))
            << "trial " << trial << " len " << len << " bits " << bits;
      }
    }
  }
}

// ---------------------------------------------------------------------
// NFTA containment: discovered-set Bitsets/AntichainStore vs vectors.
// ---------------------------------------------------------------------

void ExpectSameNftaContainment(const Nfta& a, const Nfta& b,
                               const std::string& label) {
  for (bool antichain : {true, false}) {
    Nfta::ContainmentOptions with_bitsets;
    with_bitsets.use_bitsets = true;
    with_bitsets.antichain = antichain;
    Nfta::ContainmentOptions without;
    without.use_bitsets = false;
    without.antichain = antichain;
    StatusOr<Nfta::ContainmentResult> x = Nfta::Contains(a, b, with_bitsets);
    StatusOr<Nfta::ContainmentResult> y = Nfta::Contains(a, b, without);
    ASSERT_EQ(x.ok(), y.ok()) << label;
    if (!y.ok()) continue;
    EXPECT_EQ(x->contained, y->contained)
        << label << " antichain=" << antichain;
    EXPECT_EQ(x->counterexample.ToString(), y->counterexample.ToString())
        << label << " antichain=" << antichain;
    EXPECT_EQ(x->explored, y->explored)
        << label << " antichain=" << antichain;
  }
}

Nfta RandomNfta(std::mt19937_64& rng, int states,
                const std::vector<int>& arities, double density) {
  Nfta nfta(states, arities);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int s = 0; s < states; ++s) {
    if (coin(rng) < 0.3) nfta.SetFinal(s);
  }
  for (int sym = 0; sym < static_cast<int>(arities.size()); ++sym) {
    int arity = arities[sym];
    int combos = 1;
    for (int i = 0; i < arity; ++i) combos *= states;
    for (int c = 0; c < combos; ++c) {
      std::vector<int> children(arity);
      int rest = c;
      for (int i = 0; i < arity; ++i) {
        children[i] = rest % states;
        rest /= states;
      }
      for (int to = 0; to < states; ++to) {
        if (coin(rng) < density) nfta.AddTransition(sym, children, to);
      }
    }
  }
  return nfta;
}

TEST(NftaBitsetDifferentialTest, RandomizedTreeAutomataAgree) {
  std::mt19937_64 rng(424242);
  const std::vector<int> arities = {0, 1, 2};
  for (int trial = 0; trial < 40; ++trial) {
    int sa = 2 + static_cast<int>(rng() % 4);
    int sb = 2 + static_cast<int>(rng() % 4);
    Nfta a = RandomNfta(rng, sa, arities, 0.3);
    Nfta b = RandomNfta(rng, sb, arities, 0.4);
    ExpectSameNftaContainment(a, b, StrCat("random_trial", trial));
    ExpectSameNftaContainment(a, a, StrCat("self_trial", trial));
  }
}

TEST(NftaBitsetDifferentialTest, DeterminizeAgreesOnSampleTrees) {
  std::mt19937_64 rng(999);
  const std::vector<int> arities = {0, 0, 2};
  for (int trial = 0; trial < 8; ++trial) {
    Nfta a = RandomNfta(rng, 2 + static_cast<int>(rng() % 3), arities, 0.35);
    StatusOr<Nfta> det = a.Determinize();
    ASSERT_TRUE(det.ok());
    // Sample random trees and compare acceptance.
    for (int t = 0; t < 60; ++t) {
      std::function<LabeledTree(int)> build = [&](int depth) {
        LabeledTree node;
        if (depth == 0 || rng() % 3 == 0) {
          node.symbol = static_cast<int>(rng() % 2);  // leaf symbols
          return node;
        }
        node.symbol = 2;
        node.children.push_back(build(depth - 1));
        node.children.push_back(build(depth - 1));
        return node;
      };
      LabeledTree tree = build(3);
      EXPECT_EQ(a.Accepts(tree), det->Accepts(tree))
          << "trial " << trial << " tree " << tree.ToString();
    }
  }
}

}  // namespace
}  // namespace datalog
