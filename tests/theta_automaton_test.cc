#include <gtest/gtest.h>

#include "src/containment/decider.h"
#include "src/containment/theta_automaton.h"
#include "src/generators/examples.h"
#include "src/trees/enumerate.h"
#include "src/trees/strong_mapping.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

Program SmallTc() { return TransitiveClosureProgram("e", "e0"); }

// The key correctness property of Proposition 5.10: A^θ accepts a proof
// tree iff θ maps strongly into it. Cross-checked tree by tree against
// the brute-force strong-mapping oracle.
void CheckAgainstOracle(const Program& program, const std::string& goal,
                        const ConjunctiveQuery& theta,
                        std::size_t max_depth, std::size_t max_trees) {
  StatusOr<PtreesAutomaton> ptrees = BuildPtreesAutomaton(program, goal);
  ASSERT_TRUE(ptrees.ok()) << ptrees.status();
  StatusOr<ThetaAutomaton> automaton =
      BuildThetaAutomaton(program, goal, theta, ptrees->alphabet);
  ASSERT_TRUE(automaton.ok()) << automaton.status();
  EnumerateOptions options;
  options.max_depth = max_depth;
  options.max_trees = max_trees;
  std::size_t checked = 0;
  EnumerateProofTrees(program, goal, options, [&](const ExpansionTree& tree) {
    std::optional<LabeledTree> encoded =
        ProofTreeToLabeledTree(ptrees->alphabet, tree);
    EXPECT_TRUE(encoded.has_value());
    bool automaton_accepts = automaton->nfta.Accepts(*encoded);
    bool oracle_accepts =
        HasStrongContainmentMapping(program, tree, theta);
    EXPECT_EQ(automaton_accepts, oracle_accepts)
        << "theta: " << theta.ToString() << "\ntree:\n"
        << tree.ToString();
    ++checked;
    return true;
  });
  EXPECT_GT(checked, 30u);
}

TEST(ThetaAutomatonTest, MatchesOracleOnBaseQuery) {
  CheckAgainstOracle(SmallTc(), "p", MustParseCq("p(X, Y) :- e0(X, Y)."), 2,
                     2000);
}

TEST(ThetaAutomatonTest, MatchesOracleOnPathQuery) {
  CheckAgainstOracle(SmallTc(), "p",
                     MustParseCq("p(X, Y) :- e(X, Z), e0(Z, Y)."), 2, 2000);
}

TEST(ThetaAutomatonTest, MatchesOracleOnCollapsingQuery) {
  CheckAgainstOracle(SmallTc(), "p",
                     MustParseCq("p(X, X) :- e(X, Z), e0(Z, X)."), 2, 2000);
}

TEST(ThetaAutomatonTest, MatchesOracleOnBooleanStyleQuery) {
  CheckAgainstOracle(SmallTc(), "p", MustParseCq("p(X, Y) :- e(X, Z)."), 2,
                     2000);
}

TEST(ThetaAutomatonTest, MatchesOracleOnBuys1) {
  CheckAgainstOracle(Buys1Program(), "buys",
                     MustParseCq("buys(X, Y) :- trendy(X), likes(Z, Y)."), 2,
                     2000);
}

TEST(ThetaAutomatonTest, MatchesOracleAtDepth3Sample) {
  CheckAgainstOracle(SmallTc(), "p",
                     MustParseCq("p(X, Y) :- e(X, Z), e(Z, W), e0(W, Y)."),
                     3, 400);
}

TEST(ThetaAutomatonTest, EmptyBodyQueryAcceptsEverythingWithMatchingHead) {
  Program tc = SmallTc();
  StatusOr<PtreesAutomaton> ptrees = BuildPtreesAutomaton(tc, "p");
  ASSERT_TRUE(ptrees.ok());
  StatusOr<ThetaAutomaton> automaton = BuildThetaAutomaton(
      tc, "p", MustParseCq("p(X, Y) :- ."), ptrees->alphabet);
  ASSERT_TRUE(automaton.ok());
  // Every proof tree is accepted (distinct or equal head args both unify
  // with (X, Y)).
  EnumerateOptions options;
  options.max_depth = 2;
  options.max_trees = 500;
  EnumerateProofTrees(tc, "p", options, [&](const ExpansionTree& tree) {
    std::optional<LabeledTree> encoded =
        ProofTreeToLabeledTree(ptrees->alphabet, tree);
    EXPECT_TRUE(automaton->nfta.Accepts(*encoded)) << tree.ToString();
    return true;
  });
}

// Theorem 5.11 end-to-end: the explicit-automata pipeline agrees with the
// on-the-fly decider.
TEST(ThetaAutomatonTest, ExplicitPipelineAgreesWithDecider) {
  struct Case {
    Program program;
    std::string goal;
    UnionOfCqs theta;
  };
  std::vector<Case> cases;
  {
    UnionOfCqs buys1_theta;
    buys1_theta.Add(MustParseCq("buys(X, Y) :- likes(X, Y)."));
    buys1_theta.Add(MustParseCq("buys(X, Y) :- trendy(X), likes(Z, Y)."));
    cases.push_back({Buys1Program(), "buys", buys1_theta});
    UnionOfCqs buys2_theta;
    buys2_theta.Add(MustParseCq("buys(X, Y) :- likes(X, Y)."));
    buys2_theta.Add(MustParseCq("buys(X, Y) :- knows(X, Z), likes(Z, Y)."));
    cases.push_back({Buys2Program(), "buys", buys2_theta});
  }
  {
    Program tc = SmallTc();
    UnionOfCqs two_paths;
    two_paths.Add(MustParseCq("p(X, Y) :- e0(X, Y)."));
    two_paths.Add(MustParseCq("p(X, Y) :- e(X, A), e0(A, Y)."));
    cases.push_back({tc, "p", two_paths});
    UnionOfCqs top;
    top.Add(MustParseCq("p(X, Y) :- ."));
    cases.push_back({tc, "p", top});
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    StatusOr<ExplicitContainmentResult> via_automata =
        DecideContainmentViaExplicitAutomata(cases[i].program, cases[i].goal,
                                             cases[i].theta);
    ASSERT_TRUE(via_automata.ok()) << via_automata.status();
    StatusOr<ContainmentDecision> via_decider = DecideDatalogInUcq(
        cases[i].program, cases[i].goal, cases[i].theta);
    ASSERT_TRUE(via_decider.ok());
    EXPECT_EQ(via_automata->contained, via_decider->contained)
        << "case " << i;
    if (!via_automata->contained) {
      ASSERT_TRUE(via_automata->counterexample.has_value());
      EXPECT_TRUE(
          ValidateProofTree(cases[i].program, *via_automata->counterexample)
              .ok());
      EXPECT_FALSE(AnyDisjunctMapsStrongly(cases[i].program,
                                           *via_automata->counterexample,
                                           cases[i].theta));
    }
  }
}

TEST(ThetaAutomatonTest, EmptyUnionViaExplicitPipeline) {
  Program no_base = MustParseProgram("p(X, Y) :- e(X, Z), p(Z, Y).");
  UnionOfCqs empty;
  StatusOr<ExplicitContainmentResult> result =
      DecideContainmentViaExplicitAutomata(no_base, "p", empty);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contained);

  Program tc = SmallTc();
  StatusOr<ExplicitContainmentResult> nonempty =
      DecideContainmentViaExplicitAutomata(tc, "p", empty);
  ASSERT_TRUE(nonempty.ok());
  EXPECT_FALSE(nonempty->contained);
  EXPECT_TRUE(ValidateProofTree(tc, *nonempty->counterexample).ok());
}

}  // namespace
}  // namespace datalog
