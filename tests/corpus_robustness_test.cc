// Robustness coverage for the corpus layer: timeout certificates, the
// per-instance deadline path through the staged pipeline (driven by the
// deterministic FaultInjector, so every poll point is exercised without
// wall-clock flakiness), reader-side fault injection, and the tm
// adversarial generator family.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/corpus/certificate.h"
#include "src/corpus/format.h"
#include "src/corpus/generate.h"
#include "src/corpus/pipeline.h"
#include "src/corpus/verify.h"
#include "src/util/governor.h"

namespace datalog {
namespace corpus {
namespace {

std::vector<Certificate> AllCertificates(const PipelineResult& result) {
  std::vector<Certificate> all;
  for (const StageReport& stage : result.stages) {
    all.insert(all.end(), stage.certificates.begin(),
               stage.certificates.end());
  }
  return all;
}

std::string SerializeAllStages(const PipelineResult& result) {
  std::string out;
  for (const StageReport& stage : result.stages) {
    out += "== " + stage.name + "\n";
    out += SerializeCertificates(stage.certificates);
  }
  return out;
}

// --- timeout certificates ----------------------------------------------

TEST(TimeoutCertificateTest, RoundTripsThroughText) {
  Certificate cert;
  cert.instance_id = 42;
  cert.kind = CertificateKind::kTimeout;
  cert.timeout_stage = "ptrees";
  cert.timeout_reason = "deadline";
  std::string text = SerializeCertificates({cert});
  StatusOr<std::vector<Certificate>> parsed = ParseCertificates(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].instance_id, 42u);
  EXPECT_EQ((*parsed)[0].kind, CertificateKind::kTimeout);
  EXPECT_EQ((*parsed)[0].timeout_stage, "ptrees");
  EXPECT_EQ((*parsed)[0].timeout_reason, "deadline");
  // The payload carries no timing numbers, so serialization is a pure
  // function of (id, stage, reason).
  EXPECT_EQ(SerializeCertificates(*parsed), text);
}

TEST(TimeoutCertificateTest, ParserRejectsIncompletePayloads) {
  EXPECT_FALSE(
      ParseCertificates("corpus-cert-v1\ncert 1 timeout\nstage lint\nend\n")
          .ok());
  EXPECT_FALSE(
      ParseCertificates(
          "corpus-cert-v1\ncert 1 timeout\nreason deadline\nend\n")
          .ok());
  EXPECT_FALSE(ParseCertificates(
                   "corpus-cert-v1\ncert 1 timeout\nstage lint\n"
                   "stage lint\nreason deadline\nend\n")
                   .ok());
}

TEST(TimeoutCertificateTest, VerifierChecksStageAndReason) {
  std::vector<CorpusInstance> instances = GoldenCorpus();
  Certificate cert;
  cert.instance_id = instances[0].id;
  cert.kind = CertificateKind::kTimeout;
  cert.timeout_stage = "forward";
  cert.timeout_reason = "deadline";
  EXPECT_TRUE(VerifyCertificate(instances[0], cert).ok());
  cert.timeout_stage = "warp-drive";
  EXPECT_FALSE(VerifyCertificate(instances[0], cert).ok());
  cert.timeout_stage = "forward";
  cert.timeout_reason = "boredom";
  EXPECT_FALSE(VerifyCertificate(instances[0], cert).ok());
}

// --- reader fault injection --------------------------------------------

TEST(CorpusReaderFaultTest, TruncationAndCorruptionSurfaceAsStatus) {
  CorpusWriter writer;
  for (const CorpusInstance& instance : GoldenCorpus()) {
    writer.Add(instance);
  }
  const std::string bytes = writer.Serialize();
  ASSERT_TRUE(CorpusReader::FromBytes(bytes).ok());

  // Short read at every prefix length: always a clean InvalidArgument.
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    FaultInjector fault;
    fault.TruncateReadsTo(cut);
    StatusOr<CorpusReader> reader = CorpusReader::FromBytes(bytes, &fault);
    ASSERT_FALSE(reader.ok()) << "cut at " << cut;
    EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument)
        << "cut at " << cut;
  }

  // A flipped byte anywhere lands in the checksum (or, for trailer
  // bytes, in the stored checksum itself) — never a successful parse.
  for (std::size_t at = 0; at < bytes.size(); at += 11) {
    FaultInjector fault;
    fault.FlipByteAt(at);
    StatusOr<CorpusReader> reader = CorpusReader::FromBytes(bytes, &fault);
    ASSERT_FALSE(reader.ok()) << "flip at " << at;
    EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument)
        << "flip at " << at;
  }
}

// --- pipeline governor integration -------------------------------------

TEST(PipelineGovernorTest, PreCancelledTokenAbortsTheRun) {
  std::vector<CorpusInstance> instances = GoldenCorpus();
  CancelToken token;
  token.Cancel();
  PipelineOptions options;
  options.threads = 1;
  options.limits = ExecutionLimits().WithCancel(&token);
  StatusOr<PipelineResult> result = RunCorpusPipeline(instances, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(PipelineGovernorTest, ExpiredRunDeadlineAbortsTheRun) {
  std::vector<CorpusInstance> instances = GoldenCorpus();
  PipelineOptions options;
  options.threads = 1;
  options.limits = ExecutionLimits().WithDeadlineIn(-1);
  StatusOr<PipelineResult> result = RunCorpusPipeline(instances, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// Fires a deterministic deadline fault at every poll point of a
// single-threaded pipeline run. Each firing must yield either a run
// abort (the fault hit the run-wide governor between stages) or a
// successful run with exactly one timed-out instance carrying a
// `timeout` certificate — and the timed-out outcome must be
// reproducible byte for byte.
TEST(PipelineGovernorTest, DeadlineFaultSweepYieldsTimeoutHoldouts) {
  std::vector<CorpusInstance> instances = GoldenCorpus();

  FaultInjector counter;
  PipelineOptions counting;
  counting.threads = 1;
  counting.limits = ExecutionLimits().WithFault(&counter);
  StatusOr<PipelineResult> baseline = RunCorpusPipeline(instances, counting);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const std::uint64_t polls = counter.polls();
  ASSERT_GT(polls, 0u);

  std::size_t timeout_runs = 0;
  std::uint64_t reproduce_at = 0;
  FaultInjector injector;
  for (std::uint64_t n = 1; n <= polls; ++n) {
    injector.Reset(FaultInjector::Fault::kDeadline, n);
    PipelineOptions faulted;
    faulted.threads = 1;
    faulted.limits = ExecutionLimits().WithFault(&injector);
    StatusOr<PipelineResult> result = RunCorpusPipeline(instances, faulted);
    if (!result.ok()) {
      // The fault fired at a run-wide poll: the whole run reports the
      // deadline, nothing is converted to a timeout.
      EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
          << "poll " << n << ": " << result.status();
      continue;
    }
    ASSERT_EQ(result->timed_out, 1u) << "poll " << n;
    ++timeout_runs;
    reproduce_at = n;
    std::vector<Certificate> all = AllCertificates(*result);
    std::size_t timeout_certs = 0;
    for (const Certificate& cert : all) {
      if (cert.kind != CertificateKind::kTimeout) continue;
      ++timeout_certs;
      EXPECT_EQ(cert.timeout_reason, "deadline") << "poll " << n;
    }
    EXPECT_EQ(timeout_certs, 1u) << "poll " << n;
    // The timed-out instance is exempt from full coverage; everything
    // else must still verify end to end.
    StatusOr<VerifyReport> report = VerifyCorpus(instances, all);
    ASSERT_TRUE(report.ok()) << "poll " << n << ": " << report.status();
    EXPECT_EQ(report->timed_out_instances, 1u) << "poll " << n;
  }
  ASSERT_GT(timeout_runs, 0u)
      << "no poll point fired inside per-instance work";

  // Deterministic re-run: same fault position, byte-identical stage
  // certificate files (the kTimeout payload pins stage and reason, no
  // timing numbers).
  injector.Reset(FaultInjector::Fault::kDeadline, reproduce_at);
  PipelineOptions once;
  once.threads = 1;
  once.limits = ExecutionLimits().WithFault(&injector);
  StatusOr<PipelineResult> first = RunCorpusPipeline(instances, once);
  ASSERT_TRUE(first.ok()) << first.status();
  injector.Reset(FaultInjector::Fault::kDeadline, reproduce_at);
  StatusOr<PipelineResult> second = RunCorpusPipeline(instances, once);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(SerializeAllStages(*first), SerializeAllStages(*second));
  // And clearing the fault reproduces the unfaulted baseline.
  StatusOr<PipelineResult> clean =
      RunCorpusPipeline(instances, PipelineOptions());
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(SerializeAllStages(*clean), SerializeAllStages(*baseline));
}

// --- tm family ---------------------------------------------------------

TEST(TmFamilyTest, GenerationIsDeterministicAndDisabledByDefault) {
  CorpusGenOptions with_tm;
  with_tm.seed = 7;
  with_tm.count = 6;
  with_tm.weight_tc = 0;
  with_tm.weight_deep = 0;
  with_tm.weight_wide = 0;
  with_tm.weight_nonrec = 0;
  with_tm.weight_malformed = 0;
  with_tm.weight_tm = 1;
  std::vector<CorpusInstance> tm_instances = GenerateCorpus(with_tm);
  ASSERT_EQ(tm_instances.size(), 6u);
  for (const CorpusInstance& instance : tm_instances) {
    EXPECT_EQ(instance.goal, "c");
    EXPECT_FALSE(instance.program.rules().empty());
    EXPECT_GT(instance.theta.size(), 0u);
  }
  CorpusWriter first_writer;
  for (const CorpusInstance& instance : tm_instances) {
    first_writer.Add(instance);
  }
  std::vector<CorpusInstance> again = GenerateCorpus(with_tm);
  CorpusWriter second_writer;
  for (const CorpusInstance& instance : again) {
    second_writer.Add(instance);
  }
  EXPECT_EQ(first_writer.Serialize(), second_writer.Serialize());

  // weight_tm defaults to 0: the pre-existing seeded families draw
  // identically whether or not the field exists (the draw chain only
  // reaches tm when every other weight is exhausted).
  CorpusGenOptions defaults;
  defaults.seed = 7;
  defaults.count = 50;
  for (const CorpusInstance& instance : GenerateCorpus(defaults)) {
    EXPECT_NE(instance.goal, "c");
  }
}

TEST(TmFamilyTest, TmInstancesSurviveTheLintStage) {
  // The tm instances must enter the decider stages (not bounce off the
  // lint contract): run just the pipeline's lint semantics via a full
  // run under a permissive budget on ONE rejecting machine instance,
  // whose backward direction is decidable quickly at n=1.
  CorpusGenOptions gen;
  gen.seed = 3;
  gen.count = 1;
  gen.weight_tc = 0;
  gen.weight_deep = 0;
  gen.weight_wide = 0;
  gen.weight_nonrec = 0;
  gen.weight_malformed = 0;
  gen.weight_tm = 1;
  std::vector<CorpusInstance> instances = GenerateCorpus(gen);
  ASSERT_EQ(instances.size(), 1u);
  PipelineOptions options;
  options.threads = 1;
  options.instance_deadline_ms = 30000;
  StatusOr<PipelineResult> result = RunCorpusPipeline(instances, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // Either the pipeline decided it within the budget or the deadline
  // converted it to a timeout holdout — both are resolved outcomes; it
  // must NOT be lint-invalid.
  EXPECT_EQ(result->invalid, 0u);
  EXPECT_EQ(result->stages[0].decided, 0u);  // lint decided nothing
}

}  // namespace
}  // namespace corpus
}  // namespace datalog
