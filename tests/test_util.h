// Shared helpers for tests: parse-or-fail wrappers.
#ifndef DATALOG_EQ_TESTS_TEST_UTIL_H_
#define DATALOG_EQ_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>

#include "src/ast/parser.h"
#include "src/cq/cq.h"

namespace datalog {

inline Program MustParseProgram(const std::string& text) {
  StatusOr<Program> program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status() << "\nwhile parsing:\n"
                            << text;
  return *program;
}

inline Rule MustParseRule(const std::string& text) {
  StatusOr<Rule> rule = ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status() << "\nwhile parsing: " << text;
  return *rule;
}

inline Atom MustParseAtom(const std::string& text) {
  StatusOr<Atom> atom = ParseAtom(text);
  EXPECT_TRUE(atom.ok()) << atom.status() << "\nwhile parsing: " << text;
  return *atom;
}

/// Parses a CQ written as a rule, e.g. "q(X, Y) :- e(X, Z), e(Z, Y)."
/// (the head predicate name is discarded).
inline ConjunctiveQuery MustParseCq(const std::string& text) {
  return CqFromRule(MustParseRule(text));
}

}  // namespace datalog

#endif  // DATALOG_EQ_TESTS_TEST_UTIL_H_
