#include <gtest/gtest.h>

#include "src/ast/analysis.h"
#include "src/ast/parser.h"

namespace datalog {
namespace {

Program MustParse(const std::string& text) {
  StatusOr<Program> program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return *program;
}

TEST(AnalysisTest, TransitiveClosureIsRecursiveAndLinear) {
  Program tc = MustParse(R"(
    p(X, Y) :- e(X, Z), p(Z, Y).
    p(X, Y) :- e0(X, Y).
  )");
  EXPECT_TRUE(IsRecursive(tc));
  EXPECT_FALSE(IsNonrecursive(tc));
  EXPECT_TRUE(IsLinear(tc));
  EXPECT_TRUE(IsLinearInIdb(tc));
}

TEST(AnalysisTest, NonlinearTransitiveClosure) {
  Program tc = MustParse(R"(
    p(X, Y) :- p(X, Z), p(Z, Y).
    p(X, Y) :- e(X, Y).
  )");
  EXPECT_TRUE(IsRecursive(tc));
  EXPECT_FALSE(IsLinear(tc));
  EXPECT_FALSE(IsLinearInIdb(tc));
}

TEST(AnalysisTest, NonrecursiveProgram) {
  Program p = MustParse(R"(
    dist1(X, Y) :- dist0(X, Z), dist0(Z, Y).
    dist0(X, Y) :- e(X, Y).
  )");
  EXPECT_FALSE(IsRecursive(p));
  // Two IDB atoms in one body: not linear-in-IDB, but trivially "linear"
  // in the recursive sense (no recursion at all).
  EXPECT_TRUE(IsLinear(p));
  EXPECT_FALSE(IsLinearInIdb(p));
}

TEST(AnalysisTest, MutualRecursionDetected) {
  Program p = MustParse(R"(
    even(X) :- zero(X).
    even(X) :- succ(Y, X), odd(Y).
    odd(X) :- succ(Y, X), even(Y).
  )");
  EXPECT_TRUE(IsRecursive(p));
  DependenceGraph g = BuildDependenceGraph(p);
  EXPECT_TRUE(g.MutuallyRecursive("even", "odd"));
  EXPECT_TRUE(g.IsRecursivePredicate("even"));
  EXPECT_FALSE(g.IsRecursivePredicate("zero"));
}

TEST(AnalysisTest, DependenceGraphEdgesFollowPaperOrientation) {
  // Edge from Q to P if P depends on Q (Q in body of a rule with head P).
  Program p = MustParse("p(X) :- q(X).");
  DependenceGraph g = BuildDependenceGraph(p);
  int q = g.NodeId("q");
  int pid = g.NodeId("p");
  ASSERT_EQ(g.adjacency[q].size(), 1u);
  EXPECT_EQ(g.adjacency[q][0], pid);
  EXPECT_TRUE(g.adjacency[pid].empty());
}

TEST(AnalysisTest, VarNumCountsIdbVariablesOnly) {
  // Paper §5.1: varnum(r) counts variables occurring in IDB atoms of r.
  Program tc = MustParse(R"(
    p(X, Y) :- e(X, Z), p(Z, Y).
    p(X, Y) :- e0(X, Y).
  )");
  // Rule 0: IDB atoms p(X,Y), p(Z,Y) -> {X, Y, Z} -> 3.
  EXPECT_EQ(VarNumOfRule(tc, tc.rules()[0]), 3u);
  // Rule 1: IDB atom p(X,Y) -> 2.
  EXPECT_EQ(VarNumOfRule(tc, tc.rules()[1]), 2u);
  // varnum(program) = 2 * 3 = 6.
  EXPECT_EQ(VarNum(tc), 6u);
  EXPECT_EQ(ProofVariables(tc).size(), 6u);
}

TEST(AnalysisTest, VarNumOfRuleIgnoresEdbOnlyVariablesButVarNumDoesNot) {
  Program p = MustParse(R"(
    p(X) :- e(X, U, V, W), p(X).
    p(X) :- f(X).
  )");
  // The paper's varnum(r) counts only IDB-atom variables...
  EXPECT_EQ(VarNumOfRule(p, p.rules()[0]), 1u);
  EXPECT_EQ(TotalVarsOfRule(p.rules()[0]), 4u);
  // ...but var(Π) must be able to rename all rule variables distinctly
  // (see the note on VarNum), so it is 2 * 4 here.
  EXPECT_EQ(VarNum(p), 8u);
}

TEST(AnalysisTest, ProofVariablesRespectMinimum) {
  Program p = MustParse("p(X) :- e(X), p(X).\np(X) :- f(X).");
  EXPECT_EQ(ProofVariables(p, 10).size(), 10u);
  EXPECT_TRUE(IsProofVariableName(ProofVariableName(3)));
  EXPECT_FALSE(IsProofVariableName("X"));
}

TEST(AnalysisTest, TopologicalOrderDependenciesFirst) {
  Program p = MustParse(R"(
    top(X) :- mid(X), base(X).
    mid(X) :- base(X).
    base(X) :- e(X).
  )");
  std::vector<std::string> order = TopologicalPredicateOrder(p);
  auto pos = [&order](const std::string& name) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == name) return i;
    }
    ADD_FAILURE() << name << " not in order";
    return order.size();
  };
  EXPECT_LT(pos("e"), pos("base"));
  EXPECT_LT(pos("base"), pos("mid"));
  EXPECT_LT(pos("mid"), pos("top"));
}

TEST(AnalysisTest, PaperExampleBuysPrograms) {
  Program buys1 = MustParse(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), buys(Z, Y).
  )");
  EXPECT_TRUE(IsRecursive(buys1));
  EXPECT_TRUE(IsLinear(buys1));
  // varnum: rule 2 IDB atoms buys(X,Y), buys(Z,Y): {X,Y,Z} -> 3; 2*3=6.
  EXPECT_EQ(VarNum(buys1), 6u);
}

}  // namespace
}  // namespace datalog
