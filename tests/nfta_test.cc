#include <gtest/gtest.h>

#include <random>

#include "src/automata/nfta.h"

namespace datalog {
namespace {

// Alphabet: symbol 0 = leaf "a" (arity 0), symbol 1 = leaf "b" (arity 0),
// symbol 2 = binary "f".
const std::vector<int> kArity = {0, 0, 2};

LabeledTree Leaf(int symbol) {
  LabeledTree t;
  t.symbol = symbol;
  return t;
}

LabeledTree F(LabeledTree left, LabeledTree right) {
  LabeledTree t;
  t.symbol = 2;
  t.children = {std::move(left), std::move(right)};
  return t;
}

// Accepts trees whose leaves are all "a".
Nfta AllLeavesA() {
  Nfta nfta(1, kArity);
  nfta.SetFinal(0);
  nfta.AddTransition(0, {}, 0);        // a -> q0
  nfta.AddTransition(2, {0, 0}, 0);    // f(q0, q0) -> q0
  return nfta;
}

// Accepts trees containing at least one "b" leaf.
Nfta SomeLeafB() {
  // q0 = any tree, q1 = contains b.
  Nfta nfta(2, kArity);
  nfta.SetFinal(1);
  nfta.AddTransition(0, {}, 0);
  nfta.AddTransition(1, {}, 0);
  nfta.AddTransition(1, {}, 1);
  nfta.AddTransition(2, {0, 0}, 0);
  nfta.AddTransition(2, {1, 0}, 1);
  nfta.AddTransition(2, {0, 1}, 1);
  nfta.AddTransition(2, {1, 1}, 1);
  return nfta;
}

// Accepts every tree over the alphabet.
Nfta AllTrees() {
  Nfta nfta(1, kArity);
  nfta.SetFinal(0);
  nfta.AddTransition(0, {}, 0);
  nfta.AddTransition(1, {}, 0);
  nfta.AddTransition(2, {0, 0}, 0);
  return nfta;
}

Nfta RandomNfta(std::mt19937_64& rng, int states, double density) {
  Nfta nfta(states, kArity);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> pick(0, states - 1);
  for (int s = 0; s < states; ++s) {
    if (coin(rng) < 0.35) nfta.SetFinal(s);
    if (coin(rng) < 0.7) nfta.AddTransition(0, {}, s);
    if (coin(rng) < 0.4) nfta.AddTransition(1, {}, s);
  }
  int binary = std::max(1, static_cast<int>(density * states * states));
  for (int i = 0; i < binary; ++i) {
    nfta.AddTransition(2, {pick(rng), pick(rng)}, pick(rng));
  }
  return nfta;
}

TEST(LabeledTreeTest, SizeDepthToString) {
  LabeledTree t = F(Leaf(0), F(Leaf(1), Leaf(0)));
  EXPECT_EQ(t.Size(), 5u);
  EXPECT_EQ(t.Depth(), 3u);
  EXPECT_EQ(t.ToString(), "2(0, 2(1, 0))");
}

TEST(NftaTest, AcceptsBasics) {
  Nfta a = AllLeavesA();
  EXPECT_TRUE(a.Accepts(Leaf(0)));
  EXPECT_FALSE(a.Accepts(Leaf(1)));
  EXPECT_TRUE(a.Accepts(F(Leaf(0), F(Leaf(0), Leaf(0)))));
  EXPECT_FALSE(a.Accepts(F(Leaf(0), F(Leaf(1), Leaf(0)))));
}

TEST(NftaTest, SomeLeafBWorks) {
  Nfta b = SomeLeafB();
  EXPECT_FALSE(b.Accepts(Leaf(0)));
  EXPECT_TRUE(b.Accepts(Leaf(1)));
  EXPECT_TRUE(b.Accepts(F(Leaf(0), F(Leaf(1), Leaf(0)))));
  EXPECT_FALSE(b.Accepts(F(Leaf(0), F(Leaf(0), Leaf(0)))));
}

TEST(NftaTest, EmptinessAndWitness) {
  EXPECT_FALSE(AllLeavesA().IsEmpty());
  auto witness = SomeLeafB().WitnessTree();
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(SomeLeafB().Accepts(*witness));

  Nfta empty(1, kArity);
  empty.SetFinal(0);
  empty.AddTransition(2, {0, 0}, 0);  // no leaf rule: no finite tree
  EXPECT_TRUE(empty.IsEmpty());
}

TEST(NftaTest, UnionAndIntersection) {
  Nfta u = Nfta::Union(AllLeavesA(), SomeLeafB());
  EXPECT_TRUE(u.Accepts(Leaf(0)));
  EXPECT_TRUE(u.Accepts(Leaf(1)));
  Nfta i = Nfta::Intersection(AllLeavesA(), SomeLeafB());
  // "all leaves a" and "some leaf b" are disjoint.
  EXPECT_TRUE(i.IsEmpty());
  Nfta i2 = Nfta::Intersection(AllTrees(), SomeLeafB());
  EXPECT_FALSE(i2.IsEmpty());
  EXPECT_TRUE(i2.Accepts(Leaf(1)));
  EXPECT_FALSE(i2.Accepts(Leaf(0)));
}

TEST(NftaTest, DeterminizePreservesLanguage) {
  Nfta original = SomeLeafB();
  StatusOr<Nfta> det = original.Determinize();
  ASSERT_TRUE(det.ok());
  EnumerateLabeledTrees(kArity, 3, 100000, [&](const LabeledTree& tree) {
    EXPECT_EQ(original.Accepts(tree), det->Accepts(tree)) << tree.ToString();
    return true;
  });
}

TEST(NftaTest, ComplementFlipsMembership) {
  Nfta original = AllLeavesA();
  StatusOr<Nfta> complement = original.Complement();
  ASSERT_TRUE(complement.ok());
  EnumerateLabeledTrees(kArity, 3, 100000, [&](const LabeledTree& tree) {
    EXPECT_NE(original.Accepts(tree), complement->Accepts(tree))
        << tree.ToString();
    return true;
  });
}

TEST(NftaTest, ContainmentPositive) {
  // all-leaves-a ⊆ all-trees.
  auto result = Nfta::Contains(AllLeavesA(), AllTrees());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contained);
}

TEST(NftaTest, ContainmentNegativeWithCounterexample) {
  auto result = Nfta::Contains(AllTrees(), SomeLeafB());
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->contained);
  EXPECT_TRUE(AllTrees().Accepts(result->counterexample));
  EXPECT_FALSE(SomeLeafB().Accepts(result->counterexample));
}

TEST(NftaTest, ContainmentAgreesWithComplementConstruction) {
  std::mt19937_64 rng(11);
  int disagreements = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Nfta a = RandomNfta(rng, 3, 0.4);
    Nfta b = RandomNfta(rng, 3, 0.4);
    auto onthefly = Nfta::Contains(a, b);
    ASSERT_TRUE(onthefly.ok());
    StatusOr<Nfta> not_b = b.Complement();
    ASSERT_TRUE(not_b.ok());
    bool via_complement = Nfta::Intersection(a, *not_b).IsEmpty();
    if (onthefly->contained != via_complement) ++disagreements;
    EXPECT_EQ(onthefly->contained, via_complement) << "trial " << trial;
  }
  EXPECT_EQ(disagreements, 0);
}

TEST(NftaTest, AntichainAndExactAgree) {
  std::mt19937_64 rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    Nfta a = RandomNfta(rng, 4, 0.3);
    Nfta b = RandomNfta(rng, 4, 0.3);
    Nfta::ContainmentOptions with;
    with.antichain = true;
    Nfta::ContainmentOptions without;
    without.antichain = false;
    auto r1 = Nfta::Contains(a, b, with);
    auto r2 = Nfta::Contains(a, b, without);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r1->contained, r2->contained) << "trial " << trial;
  }
}

TEST(NftaTest, CounterexamplesAreGenuine) {
  std::mt19937_64 rng(5);
  int negatives = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Nfta a = RandomNfta(rng, 3, 0.5);
    Nfta b = RandomNfta(rng, 3, 0.2);
    auto result = Nfta::Contains(a, b);
    ASSERT_TRUE(result.ok());
    if (!result->contained) {
      ++negatives;
      EXPECT_TRUE(a.Accepts(result->counterexample))
          << result->counterexample.ToString();
      EXPECT_FALSE(b.Accepts(result->counterexample))
          << result->counterexample.ToString();
    }
  }
  EXPECT_GT(negatives, 3);
}

TEST(NftaTest, MembershipAgreesWithEnumerationOfWitnesses) {
  // Every tree enumerated up to depth 3 that AllLeavesA accepts has only
  // "a" leaves; cross-check the semantics of the enumeration helper.
  std::size_t accepted = 0;
  EnumerateLabeledTrees(kArity, 3, 100000, [&](const LabeledTree& tree) {
    if (AllLeavesA().Accepts(tree)) {
      ++accepted;
      std::function<bool(const LabeledTree&)> only_a =
          [&only_a](const LabeledTree& t) {
            if (t.children.empty()) return t.symbol == 0;
            for (const LabeledTree& c : t.children) {
              if (!only_a(c)) return false;
            }
            return true;
          };
      EXPECT_TRUE(only_a(tree));
    }
    return true;
  });
  // depth<=3 all-a trees: a, f(a,a), f(a,f(a,a)), f(f(a,a),a),
  // f(f(a,a),f(a,a)) = 5.
  EXPECT_EQ(accepted, 5u);
}

}  // namespace
}  // namespace datalog
