#include <gtest/gtest.h>

#include "src/containment/boundedness.h"
#include "src/generators/examples.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

TEST(BoundednessTest, Buys1IsBoundedAtDepth2) {
  // Example 1.1: buys1 is equivalent to a nonrecursive program — in fact
  // to the union of its depth<=2 expansions.
  Program buys1 = Buys1Program();
  StatusOr<bool> at1 = IsBoundedAtDepth(buys1, "buys", 1);
  StatusOr<bool> at2 = IsBoundedAtDepth(buys1, "buys", 2);
  ASSERT_TRUE(at1.ok());
  ASSERT_TRUE(at2.ok());
  EXPECT_FALSE(*at1);
  EXPECT_TRUE(*at2);
  StatusOr<std::optional<std::size_t>> depth =
      FindBoundedDepth(buys1, "buys", 4);
  ASSERT_TRUE(depth.ok());
  ASSERT_TRUE(depth->has_value());
  EXPECT_EQ(**depth, 2u);
}

TEST(BoundednessTest, Buys2IsNotBoundedAtSmallDepths) {
  // Example 1.1: buys2 is inherently recursive, so no bounded unfolding
  // is equivalent (the semi-decision procedure never succeeds).
  Program buys2 = Buys2Program();
  StatusOr<std::optional<std::size_t>> depth =
      FindBoundedDepth(buys2, "buys", 4);
  ASSERT_TRUE(depth.ok());
  EXPECT_FALSE(depth->has_value());
}

TEST(BoundednessTest, TransitiveClosureIsUnbounded) {
  Program tc = TransitiveClosureProgram();
  StatusOr<std::optional<std::size_t>> depth =
      FindBoundedDepth(tc, "p", 4);
  ASSERT_TRUE(depth.ok());
  EXPECT_FALSE(depth->has_value());
}

TEST(BoundednessTest, TriviallyBoundedProgram) {
  // The recursion is vacuous: the recursive rule derives a subset of what
  // the base rule already derives.
  Program p = MustParseProgram(R"(
    q(X) :- e(X).
    q(X) :- e(X), q(X).
  )");
  StatusOr<bool> at1 = IsBoundedAtDepth(p, "q", 1);
  ASSERT_TRUE(at1.ok());
  EXPECT_TRUE(*at1);
}

TEST(BoundednessTest, BoundedViaAbsorbingBaseCase) {
  // p(X,Y) :- t(X,Y) | t(X,Z), p(Z,Y) where t is total on second arg...
  // here a simpler classic: the recursive rule re-derives the base
  // because the recursive subgoal's result is ignored up to projection.
  Program p = MustParseProgram(R"(
    q(X) :- e(X, Y).
    q(X) :- e(X, Y), q(Y).
  )");
  // Depth 1 expansions: e(X,Y). A depth-2 expansion e(X,Y),e(Y,Z) maps
  // onto e(X,Y) (Z fresh): bounded at 1.
  StatusOr<bool> at1 = IsBoundedAtDepth(p, "q", 1);
  ASSERT_TRUE(at1.ok());
  EXPECT_TRUE(*at1);
}

}  // namespace
}  // namespace datalog
