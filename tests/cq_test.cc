#include <gtest/gtest.h>

#include "src/cq/cq.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

TEST(CqTest, FromRuleAndBack) {
  Rule r = MustParseRule("q(X, Y) :- e(X, Z), e(Z, Y).");
  ConjunctiveQuery cq = CqFromRule(r);
  EXPECT_EQ(cq.arity(), 2u);
  EXPECT_EQ(cq.body().size(), 2u);
  Rule back = RuleFromCq("q", cq);
  EXPECT_EQ(back, r);
}

TEST(CqTest, VariableNamesHeadFirst) {
  ConjunctiveQuery cq = MustParseCq("q(Y, X) :- e(X, Z), e(Z, W).");
  EXPECT_EQ(cq.VariableNames(),
            (std::vector<std::string>{"Y", "X", "Z", "W"}));
  EXPECT_EQ(cq.DistinguishedVariableNames(),
            (std::vector<std::string>{"Y", "X"}));
}

TEST(CqTest, DistinguishedDeduplicated) {
  ConjunctiveQuery cq = MustParseCq("q(X, X, a) :- e(X).");
  EXPECT_EQ(cq.DistinguishedVariableNames(),
            (std::vector<std::string>{"X"}));
}

TEST(CqTest, ToStringEmptyBody) {
  ConjunctiveQuery cq = MustParseCq("q(X, X) :- .");
  EXPECT_EQ(cq.ToString(), "(X, X) :- true");
}

TEST(CqTest, CanonicalizeVariablesRenamesInOccurrenceOrder) {
  ConjunctiveQuery a = MustParseCq("q(U, W) :- e(U, T), e(T, W).");
  ConjunctiveQuery b = MustParseCq("q(X, Y) :- e(X, Z), e(Z, Y).");
  EXPECT_EQ(CanonicalizeVariables(a), CanonicalizeVariables(b));
}

TEST(CqTest, CanonicalizePreservesConstants) {
  ConjunctiveQuery cq = MustParseCq("q(X) :- e(X, k), f(k).");
  ConjunctiveQuery canonical = CanonicalizeVariables(cq);
  EXPECT_EQ(canonical.body()[0].args()[1], Term::Constant("k"));
}

TEST(CqTest, SortedBodyCanonicalFormIsOrderInsensitive) {
  ConjunctiveQuery a = MustParseCq("q(X) :- e(X, Y), f(Y, Z).");
  ConjunctiveQuery b = MustParseCq("q(U) :- f(V, W), e(U, V).");
  EXPECT_EQ(SortedBodyCanonicalForm(a), SortedBodyCanonicalForm(b));
}

TEST(CqTest, ApplySubstitutionToHeadAndBody) {
  ConjunctiveQuery cq = MustParseCq("q(X, Y) :- e(X, Y).");
  Substitution s;
  s.emplace("X", Term::Constant("a"));
  ConjunctiveQuery result = ApplySubstitution(s, cq);
  EXPECT_EQ(result.head_args()[0], Term::Constant("a"));
  EXPECT_EQ(result.body()[0].args()[0], Term::Constant("a"));
}

TEST(UnionOfCqsTest, BasicOperations) {
  UnionOfCqs ucq;
  EXPECT_TRUE(ucq.empty());
  ucq.Add(MustParseCq("q(X) :- e(X)."));
  ucq.Add(MustParseCq("q(X) :- f(X)."));
  EXPECT_EQ(ucq.size(), 2u);
  EXPECT_FALSE(ucq.empty());
}

}  // namespace
}  // namespace datalog
