#include <gtest/gtest.h>

#include "src/containment/decider.h"
#include "src/containment/linear.h"
#include "src/generators/examples.h"
#include "src/trees/strong_mapping.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

LinearContainmentResult MustDecideLinear(const Program& program,
                                         const std::string& goal,
                                         const UnionOfCqs& theta) {
  StatusOr<LinearContainmentResult> result =
      DecideLinearDatalogInUcq(program, goal, theta);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

TEST(LinearDeciderTest, PaperExample11Buys1) {
  UnionOfCqs theta;
  theta.Add(MustParseCq("buys(X, Y) :- likes(X, Y)."));
  theta.Add(MustParseCq("buys(X, Y) :- trendy(X), likes(Z, Y)."));
  LinearContainmentResult result =
      MustDecideLinear(Buys1Program(), "buys", theta);
  EXPECT_TRUE(result.contained);
}

TEST(LinearDeciderTest, PaperExample11Buys2WithCounterexample) {
  UnionOfCqs theta;
  theta.Add(MustParseCq("buys(X, Y) :- likes(X, Y)."));
  theta.Add(MustParseCq("buys(X, Y) :- knows(X, Z), likes(Z, Y)."));
  LinearContainmentResult result =
      MustDecideLinear(Buys2Program(), "buys", theta);
  ASSERT_FALSE(result.contained);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_TRUE(ValidateProofTree(Buys2Program(), *result.counterexample).ok())
      << result.counterexample->ToString();
  EXPECT_FALSE(
      AnyDisjunctMapsStrongly(Buys2Program(), *result.counterexample, theta));
}

TEST(LinearDeciderTest, TransitiveClosureCases) {
  Program tc = TransitiveClosureProgram("e", "e");
  UnionOfCqs top;
  top.Add(MustParseCq("p(X, Y) :- ."));
  EXPECT_TRUE(MustDecideLinear(tc, "p", top).contained);
  EXPECT_FALSE(MustDecideLinear(tc, "p", PathQueries(3)).contained);
}

TEST(LinearDeciderTest, RejectsNonlinearPrograms) {
  Program nl = NonlinearTransitiveClosureProgram();
  UnionOfCqs top;
  top.Add(MustParseCq("p(X, Y) :- ."));
  StatusOr<LinearContainmentResult> result =
      DecideLinearDatalogInUcq(nl, "p", top);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LinearDeciderTest, EmptyUnion) {
  Program no_base = MustParseProgram("p(X, Y) :- e(X, Z), p(Z, Y).");
  UnionOfCqs empty;
  EXPECT_TRUE(MustDecideLinear(no_base, "p", empty).contained);
  Program tc = TransitiveClosureProgram("e", "e");
  LinearContainmentResult result = MustDecideLinear(tc, "p", empty);
  EXPECT_FALSE(result.contained);
  EXPECT_TRUE(ValidateProofTree(tc, *result.counterexample).ok());
}

// The word-automaton decider and the tree decider implement the same
// theorem; they must agree on every linear case.
TEST(LinearDeciderTest, AgreesWithTreeDecider) {
  struct Case {
    Program program;
    std::string goal;
    UnionOfCqs theta;
  };
  std::vector<Case> cases;
  {
    UnionOfCqs t1;
    t1.Add(MustParseCq("buys(X, Y) :- likes(X, Y)."));
    t1.Add(MustParseCq("buys(X, Y) :- trendy(X), likes(Z, Y)."));
    cases.push_back({Buys1Program(), "buys", t1});
    UnionOfCqs t2;
    t2.Add(MustParseCq("buys(X, Y) :- likes(X, Y)."));
    t2.Add(MustParseCq("buys(X, Y) :- knows(X, Z), likes(Z, Y)."));
    cases.push_back({Buys2Program(), "buys", t2});
  }
  {
    Program tc = TransitiveClosureProgram("e", "e");
    cases.push_back({tc, "p", PathQueries(2)});
    UnionOfCqs top;
    top.Add(MustParseCq("p(X, Y) :- ."));
    cases.push_back({tc, "p", top});
    UnionOfCqs diag;
    diag.Add(MustParseCq("p(X, X) :- ."));
    cases.push_back({tc, "p", diag});
  }
  {
    Program reach = MustParseProgram(R"(
      r(X) :- e(root, X).
      r(X) :- r(Y), e(Y, X).
    )");
    UnionOfCqs incoming;
    incoming.Add(MustParseCq("r(X) :- e(Y, X)."));
    cases.push_back({reach, "r", incoming});
    UnionOfCqs from_root;
    from_root.Add(MustParseCq("r(X) :- e(root, X)."));
    cases.push_back({reach, "r", from_root});
  }
  {
    Program evenodd = MustParseProgram(R"(
      even(X) :- zero(X).
      even(X) :- succ(Y, X), odd(Y).
      odd(X) :- succ(Y, X), even(Y).
    )");
    UnionOfCqs step;
    step.Add(MustParseCq("odd(X) :- succ(Y, X)."));
    cases.push_back({evenodd, "odd", step});
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    LinearContainmentResult via_word =
        MustDecideLinear(cases[i].program, cases[i].goal, cases[i].theta);
    StatusOr<ContainmentDecision> via_tree = DecideDatalogInUcq(
        cases[i].program, cases[i].goal, cases[i].theta);
    ASSERT_TRUE(via_tree.ok());
    EXPECT_EQ(via_word.contained, via_tree->contained) << "case " << i;
    if (!via_word.contained) {
      EXPECT_TRUE(
          ValidateProofTree(cases[i].program, *via_word.counterexample).ok())
          << "case " << i;
      EXPECT_FALSE(AnyDisjunctMapsStrongly(
          cases[i].program, *via_word.counterexample, cases[i].theta))
          << "case " << i;
    }
  }
}

TEST(LinearDeciderTest, CounterexamplesAreShortestPaths) {
  Program tc = TransitiveClosureProgram("e", "e");
  LinearContainmentResult result =
      MustDecideLinear(tc, "p", PathQueries(3));
  ASSERT_FALSE(result.contained);
  // The shortest uncovered expansion is the path of length 4 (4 nodes).
  EXPECT_EQ(result.counterexample->Size(), 4u);
}

TEST(LinearDeciderTest, ChainProgramScaling) {
  // ChainProgram(2) derives paths of odd length; the union of odd paths up
  // to 3 misses length 5.
  Program chain = ChainProgram(2);
  UnionOfCqs odd_paths;
  odd_paths.Add(ChainQuery(1));
  odd_paths.Add(ChainQuery(3));
  LinearContainmentResult result = MustDecideLinear(chain, "p", odd_paths);
  ASSERT_FALSE(result.contained);
  EXPECT_EQ(result.counterexample->Size(), 3u);  // 2+2+1 edges over 3 nodes
}

}  // namespace
}  // namespace datalog
