#include "src/util/bitset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <vector>

namespace datalog {
namespace {

// --- Bitset kernels across the word boundaries -------------------------

TEST(BitsetTest, DefaultIsEmpty) {
  Bitset set;
  EXPECT_EQ(set.num_bits(), 0u);
  EXPECT_TRUE(set.None());
  EXPECT_EQ(set.Count(), 0u);
  EXPECT_EQ(set.Fold(), 0u);
}

TEST(BitsetTest, SetTestResetAtWordBoundaryWidths) {
  for (std::size_t width : {1u, 63u, 64u, 65u, 128u}) {
    Bitset set(width);
    EXPECT_EQ(set.num_bits(), width);
    for (std::size_t i = 0; i < width; ++i) {
      EXPECT_FALSE(set.Test(i)) << "width " << width << " bit " << i;
      set.Set(i);
      EXPECT_TRUE(set.Test(i)) << "width " << width << " bit " << i;
    }
    EXPECT_EQ(set.Count(), width);
    for (std::size_t i = 0; i < width; ++i) {
      set.Reset(i);
      EXPECT_FALSE(set.Test(i)) << "width " << width << " bit " << i;
    }
    EXPECT_TRUE(set.None());
  }
}

TEST(BitsetTest, InlineToHeapTransitionKeepsBits) {
  // Starts inline (one word), grows past 64 bits onto the heap via Set.
  Bitset set(1);
  EXPECT_EQ(set.num_words(), 1u);
  set.Set(0);
  set.Set(63);  // Set auto-grows logical capacity within the inline word
  EXPECT_EQ(set.num_words(), 1u);
  set.Set(64);  // crosses onto the heap
  EXPECT_GE(set.num_words(), 2u);
  set.Set(127);
  EXPECT_TRUE(set.Test(0));
  EXPECT_TRUE(set.Test(63));
  EXPECT_TRUE(set.Test(64));
  EXPECT_TRUE(set.Test(127));
  EXPECT_FALSE(set.Test(1));
  EXPECT_FALSE(set.Test(65));
  EXPECT_EQ(set.Count(), 4u);
}

TEST(BitsetTest, EqualityAndHashIgnoreCapacity) {
  Bitset narrow(8);
  narrow.Set(3);
  Bitset wide(200);
  wide.Set(3);
  EXPECT_EQ(narrow, wide);
  EXPECT_EQ(narrow.Hash(), wide.Hash());
  wide.Set(150);
  EXPECT_NE(narrow, wide);
  wide.Reset(150);
  EXPECT_EQ(narrow, wide);
  EXPECT_EQ(narrow.Hash(), wide.Hash());
}

TEST(BitsetTest, CopyAndMoveAcrossRepresentations) {
  Bitset inline_set(10);
  inline_set.Set(7);
  Bitset heap_set(100);
  heap_set.Set(7);
  heap_set.Set(99);

  Bitset copy = heap_set;
  EXPECT_EQ(copy, heap_set);
  copy.Set(50);
  EXPECT_FALSE(heap_set.Test(50));  // deep copy

  Bitset moved = std::move(copy);
  EXPECT_TRUE(moved.Test(50));
  EXPECT_TRUE(moved.Test(99));

  // Heap-to-inline and inline-to-heap assignment.
  moved = inline_set;
  EXPECT_EQ(moved, inline_set);
  Bitset target(4);
  target = heap_set;
  EXPECT_EQ(target, heap_set);
}

TEST(BitsetTest, SubsetTreatsMissingHighWordsAsZero) {
  Bitset small(5);
  small.Set(2);
  Bitset big(130);
  big.Set(2);
  big.Set(129);
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  big.Reset(129);
  EXPECT_TRUE(big.IsSubsetOf(small));
  std::size_t word_ops = 0;
  EXPECT_TRUE(small.IsSubsetOf(big, &word_ops));
  EXPECT_GE(word_ops, 1u);
}

TEST(BitsetTest, ForEachSetBitVisitsInOrder) {
  Bitset set(130);
  std::vector<std::size_t> expect = {0, 5, 63, 64, 65, 128};
  for (std::size_t i : expect) set.Set(i);
  EXPECT_EQ(set.ToVector(), expect);
}

// Oracle: mirror every kernel against std::set over random universes
// spanning the inline/heap boundary.
TEST(BitsetTest, KernelIdentitiesAgainstSetOracle) {
  std::mt19937 rng(20260808);
  for (std::size_t universe : {1u, 63u, 64u, 65u, 128u, 300u}) {
    std::uniform_int_distribution<std::size_t> pick(0, universe - 1);
    for (int trial = 0; trial < 50; ++trial) {
      std::set<std::size_t> oracle_a;
      std::set<std::size_t> oracle_b;
      Bitset a(universe);
      Bitset b(universe);
      std::size_t fill_a = rng() % (universe + 1);
      std::size_t fill_b = rng() % (universe + 1);
      for (std::size_t i = 0; i < fill_a; ++i) {
        std::size_t bit = pick(rng);
        oracle_a.insert(bit);
        a.Set(bit);
      }
      for (std::size_t i = 0; i < fill_b; ++i) {
        std::size_t bit = pick(rng);
        oracle_b.insert(bit);
        b.Set(bit);
      }
      EXPECT_EQ(a.Count(), oracle_a.size());
      EXPECT_EQ(a.Any(), !oracle_a.empty());
      EXPECT_EQ(a == b, oracle_a == oracle_b);
      bool oracle_subset = std::includes(oracle_b.begin(), oracle_b.end(),
                                         oracle_a.begin(), oracle_a.end());
      EXPECT_EQ(a.IsSubsetOf(b), oracle_subset);
      std::vector<std::size_t> inter;
      std::set_intersection(oracle_a.begin(), oracle_a.end(),
                            oracle_b.begin(), oracle_b.end(),
                            std::back_inserter(inter));
      EXPECT_EQ(a.Intersects(b), !inter.empty());
      Bitset union_ab = a;
      union_ab.UnionWith(b);
      std::set<std::size_t> oracle_union = oracle_a;
      oracle_union.insert(oracle_b.begin(), oracle_b.end());
      EXPECT_EQ(union_ab.ToVector(),
                std::vector<std::size_t>(oracle_union.begin(),
                                         oracle_union.end()));
      Bitset inter_ab = a;
      inter_ab.IntersectWith(b);
      EXPECT_EQ(inter_ab.ToVector(), inter);
      // Fold is a sound subset filter.
      if (oracle_subset) {
        EXPECT_EQ(a.Fold() & ~b.Fold(), 0u);
      }
      // Hash consistency with equality.
      if (oracle_a == oracle_b) {
        EXPECT_EQ(a.Hash(), b.Hash());
      }
    }
  }
}

// --- AntichainStore against a brute-force oracle -----------------------

// Brute-force reference: a flat vector with quadratic dominance scans.
class OracleStore {
 public:
  explicit OracleStore(AntichainStore::Mode mode) : mode_(mode) {}

  bool Insert(const Bitset& set, std::uint64_t payload,
              std::vector<std::uint64_t>* pruned) {
    for (const auto& [existing, existing_payload] : entries_) {
      bool dominated =
          mode_ == AntichainStore::Mode::kExact
              ? existing == set
              : mode_ == AntichainStore::Mode::kKeepMinimal
                    ? existing.IsSubsetOf(set)
                    : set.IsSubsetOf(existing);
      if (dominated) return false;
    }
    if (mode_ != AntichainStore::Mode::kExact) {
      for (std::size_t i = 0; i < entries_.size();) {
        bool dominates = mode_ == AntichainStore::Mode::kKeepMinimal
                             ? set.IsSubsetOf(entries_[i].first)
                             : entries_[i].first.IsSubsetOf(set);
        if (dominates) {
          if (pruned != nullptr) pruned->push_back(entries_[i].second);
          entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }
    entries_.emplace_back(set, payload);
    return true;
  }

  std::vector<std::pair<Bitset, std::uint64_t>> Sorted() const {
    std::vector<std::pair<Bitset, std::uint64_t>> out = entries_;
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    return out;
  }

 private:
  AntichainStore::Mode mode_;
  std::vector<std::pair<Bitset, std::uint64_t>> entries_;
};

TEST(AntichainStoreTest, KeepsMinimalChain) {
  AntichainStore store(AntichainStore::Mode::kKeepMinimal);
  Bitset big(10);
  big.Set(1);
  big.Set(2);
  big.Set(3);
  EXPECT_TRUE(store.Insert(big, 1));
  EXPECT_TRUE(store.Dominated(big));  // itself
  Bitset small(10);
  small.Set(2);
  std::vector<std::uint64_t> pruned;
  EXPECT_TRUE(store.Insert(small, 2, &pruned));  // prunes the superset
  EXPECT_EQ(pruned, std::vector<std::uint64_t>{1});
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Dominated(big));       // dominated by the subset
  EXPECT_FALSE(store.Insert(big, 3));      // rejected
  Bitset disjoint(10);
  disjoint.Set(7);
  EXPECT_FALSE(store.Dominated(disjoint));
  EXPECT_TRUE(store.Insert(disjoint, 4));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_GT(store.stats().prunes, 0u);
}

TEST(AntichainStoreTest, KeepsMaximalChain) {
  AntichainStore store(AntichainStore::Mode::kKeepMaximal);
  Bitset small(10);
  small.Set(2);
  EXPECT_TRUE(store.Insert(small, 1));
  Bitset big(10);
  big.Set(1);
  big.Set(2);
  std::vector<std::uint64_t> pruned;
  EXPECT_TRUE(store.Insert(big, 2, &pruned));  // prunes the subset
  EXPECT_EQ(pruned, std::vector<std::uint64_t>{1});
  EXPECT_FALSE(store.Insert(small, 3));  // dominated by the superset
  EXPECT_EQ(store.size(), 1u);
}

TEST(AntichainStoreTest, ExactModeDedupsEqualOnly) {
  AntichainStore store(AntichainStore::Mode::kExact);
  Bitset a(10);
  a.Set(1);
  Bitset ab(10);
  ab.Set(1);
  ab.Set(2);
  EXPECT_TRUE(store.Insert(a, 1));
  EXPECT_TRUE(store.Insert(ab, 2));  // superset still stored
  EXPECT_FALSE(store.Insert(a, 3));  // equal rejected
  EXPECT_EQ(store.size(), 2u);
}

TEST(AntichainStoreTest, RandomizedAgainstBruteForceOracle) {
  std::mt19937 rng(987654321);
  for (AntichainStore::Mode mode : {AntichainStore::Mode::kKeepMinimal,
                                    AntichainStore::Mode::kKeepMaximal,
                                    AntichainStore::Mode::kExact}) {
    for (std::size_t universe : {12u, 70u, 150u}) {
      AntichainStore store(mode);
      OracleStore oracle(mode);
      std::uniform_int_distribution<std::size_t> pick(0, universe - 1);
      for (std::uint64_t payload = 0; payload < 200; ++payload) {
        Bitset set(universe);
        // Skewed small sets so subset relations actually occur.
        std::size_t fill = 1 + rng() % 6;
        for (std::size_t i = 0; i < fill; ++i) set.Set(pick(rng));
        std::vector<std::uint64_t> pruned;
        std::vector<std::uint64_t> oracle_pruned;
        bool inserted = store.Insert(set, payload, &pruned);
        bool oracle_inserted = oracle.Insert(set, payload, &oracle_pruned);
        ASSERT_EQ(inserted, oracle_inserted) << "payload " << payload;
        std::sort(pruned.begin(), pruned.end());
        std::sort(oracle_pruned.begin(), oracle_pruned.end());
        ASSERT_EQ(pruned, oracle_pruned) << "payload " << payload;
      }
      // Surviving families are identical (compare by payload).
      std::vector<std::pair<Bitset, std::uint64_t>> got;
      store.ForEach([&got](const Bitset& set, std::uint64_t payload) {
        got.emplace_back(set, payload);
      });
      std::sort(got.begin(), got.end(), [](const auto& a, const auto& b) {
        return a.second < b.second;
      });
      std::vector<std::pair<Bitset, std::uint64_t>> expect = oracle.Sorted();
      ASSERT_EQ(got.size(), expect.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].second, expect[i].second);
        EXPECT_EQ(got[i].first, expect[i].first);
      }
      // The index did useful filtering on at least some probes.
      EXPECT_GT(store.stats().subset_checks, 0u);
    }
  }
}

}  // namespace
}  // namespace datalog
