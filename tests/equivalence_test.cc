#include <gtest/gtest.h>

#include "src/containment/equivalence.h"
#include "src/engine/eval.h"
#include "src/engine/random_db.h"
#include "src/generators/examples.h"
#include "src/trees/connectivity.h"
#include "src/util/strings.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

EquivalenceResult MustDecideEquivalence(const Program& rec,
                                        const Program& nonrec,
                                        const std::string& goal) {
  StatusOr<EquivalenceResult> result =
      DecideRecNonrecEquivalence(rec, goal, nonrec, goal);
  EXPECT_TRUE(result.ok()) << result.status();
  return *result;
}

TEST(EquivalenceTest, PaperExample11Positive) {
  // The paper's central positive claim: buys1 IS equivalent to its
  // nonrecursive rewriting.
  EquivalenceResult result = MustDecideEquivalence(
      Buys1Program(), Buys1NonrecursiveProgram(), "buys");
  EXPECT_TRUE(result.forward_contained);
  EXPECT_TRUE(result.backward_contained);
  EXPECT_TRUE(result.equivalent);
  EXPECT_EQ(result.unfolded_disjuncts, 2u);
}

TEST(EquivalenceTest, PaperExample11Negative) {
  // ... and the central negative claim: buys2 is NOT equivalent to the
  // analogous rewriting; the failure is in the forward direction, and a
  // counterexample expansion is produced.
  EquivalenceResult result = MustDecideEquivalence(
      Buys2Program(), Buys2NonrecursiveProgram(), "buys");
  EXPECT_FALSE(result.forward_contained);
  EXPECT_TRUE(result.backward_contained);
  EXPECT_FALSE(result.equivalent);
  ASSERT_TRUE(result.forward_counterexample.has_value());
  EXPECT_TRUE(
      ValidateProofTree(Buys2Program(), *result.forward_counterexample).ok());
}

TEST(EquivalenceTest, CounterexampleSeparatesTheProgramsOnARealDatabase) {
  EquivalenceResult result = MustDecideEquivalence(
      Buys2Program(), Buys2NonrecursiveProgram(), "buys");
  ASSERT_TRUE(result.forward_counterexample.has_value());
  // Freeze the counterexample expansion into a database; the recursive
  // program derives the goal tuple, the nonrecursive one does not.
  ExpansionTree renamed =
      TreeConnectivity(*result.forward_counterexample).RenameByClass();
  ConjunctiveQuery expansion = TreeToCq(Buys2Program(), renamed);
  Database db;
  Substitution freeze;
  int counter = 0;
  for (const std::string& v : expansion.VariableNames()) {
    freeze.emplace(v, Term::Constant(StrCat("c", counter++)));
  }
  for (const Atom& atom : expansion.body()) {
    ASSERT_TRUE(db.AddFactAtom(ApplySubstitution(freeze, atom)).ok());
  }
  Tuple goal_tuple;
  for (const Term& t : expansion.head_args()) {
    goal_tuple.push_back(
        db.dictionary().Intern(ApplySubstitution(freeze, t).name()));
  }
  StatusOr<Relation> recursive =
      EvaluateGoal(Buys2Program(), "buys", db);
  StatusOr<Relation> nonrecursive =
      EvaluateGoal(Buys2NonrecursiveProgram(), "buys", db);
  ASSERT_TRUE(recursive.ok());
  ASSERT_TRUE(nonrecursive.ok());
  EXPECT_TRUE(recursive->Contains(goal_tuple));
  EXPECT_FALSE(nonrecursive->Contains(goal_tuple));
}

TEST(EquivalenceTest, RecursiveProgramEquivalentToDeeperRewriting) {
  // buys1 is also equivalent to the depth-3 rewriting (one more trendy
  // step spelled out); redundancy does not break equivalence.
  Program nonrec = MustParseProgram(R"(
    buys(X, Y) :- likes(X, Y).
    buys(X, Y) :- trendy(X), likes(Z, Y).
    buys(X, Y) :- trendy(X), trendy(W), likes(Z, Y).
  )");
  EquivalenceResult result =
      MustDecideEquivalence(Buys1Program(), nonrec, "buys");
  EXPECT_TRUE(result.equivalent);
}

TEST(EquivalenceTest, NonEquivalentBecauseNonrecursiveIsLarger) {
  // The nonrecursive side admits f-edges the recursive side never derives:
  // backward containment fails.
  Program rec = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
  )");
  Program nonrec = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- f(X, Y).
  )");
  EquivalenceResult result = MustDecideEquivalence(rec, nonrec, "p");
  EXPECT_FALSE(result.equivalent);
  EXPECT_FALSE(result.backward_contained);
  ASSERT_TRUE(result.backward_counterexample.has_value());
  EXPECT_EQ(result.backward_counterexample->body()[0].predicate(), "f");
}

TEST(EquivalenceTest, MultiLayerNonrecursiveComparand) {
  // A nonrecursive program with real layering (mid predicates) against an
  // equivalent recursive formulation that can take one or two e-steps.
  Program rec = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), e(Z, Y).
  )");
  Program nonrec = MustParseProgram(R"(
    p(X, Y) :- step(X, Y).
    step(X, Y) :- e(X, Y).
    step(X, Y) :- e(X, Z), e(Z, Y).
  )");
  EquivalenceResult result = MustDecideEquivalence(rec, nonrec, "p");
  EXPECT_TRUE(result.equivalent);
}

TEST(EquivalenceTest, RejectsRecursiveSecondArgument) {
  StatusOr<EquivalenceResult> result = DecideRecNonrecEquivalence(
      Buys1Program(), "buys", Buys2Program(), "buys");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EquivalenceTest, ContainmentInNonrecursiveWrapper) {
  StatusOr<ContainmentDecision> decision = DecideDatalogInNonrecursive(
      Buys1Program(), "buys", Buys1NonrecursiveProgram(), "buys");
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->contained);
  decision = DecideDatalogInNonrecursive(Buys2Program(), "buys",
                                         Buys2NonrecursiveProgram(), "buys");
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision->contained);
}

TEST(EquivalenceTest, TransitiveClosureVsDist) {
  // TC is not equivalent to dist_2 (paths of length exactly 4), in either
  // direction.
  Program tc = MustParseProgram(R"(
    dist2(X, Y) :- e(X, Y).
    dist2(X, Y) :- e(X, Z), dist2(Z, Y).
  )");
  EquivalenceResult result =
      MustDecideEquivalence(tc, DistProgram(2), "dist2");
  EXPECT_FALSE(result.equivalent);
  EXPECT_FALSE(result.forward_contained);
}

TEST(EquivalenceTest, RandomDatabaseDifferentialAgreesWithVerdicts) {
  struct Case {
    Program rec;
    Program nonrec;
    std::string goal;
  };
  std::vector<Case> cases = {
      {Buys1Program(), Buys1NonrecursiveProgram(), "buys"},
      {Buys2Program(), Buys2NonrecursiveProgram(), "buys"},
  };
  for (const Case& c : cases) {
    EquivalenceResult verdict =
        MustDecideEquivalence(c.rec, c.nonrec, c.goal);
    bool refuted = false;
    for (std::uint64_t seed = 1; seed <= 25 && !refuted; ++seed) {
      RandomDbOptions options;
      options.seed = seed;
      options.domain_size = 3;
      options.tuples_per_relation = 4;
      Database db = RandomDatabaseFor(c.rec, options);
      StatusOr<Relation> lhs = EvaluateGoal(c.rec, c.goal, db);
      StatusOr<Relation> rhs = EvaluateGoal(c.nonrec, c.goal, db);
      ASSERT_TRUE(lhs.ok());
      ASSERT_TRUE(rhs.ok());
      if (!(*lhs == *rhs)) refuted = true;
      if (verdict.equivalent) {
        EXPECT_EQ(*lhs, *rhs) << "seed " << seed;
      }
    }
    // Note: random databases may fail to refute a non-equivalence (the
    // separating structure is specific), so we only assert one direction.
    if (refuted) {
      EXPECT_FALSE(verdict.equivalent);
    }
  }
}

}  // namespace
}  // namespace datalog
