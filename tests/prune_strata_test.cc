// Differential tests for the static-analysis ablation switches: on fixed
// program families crossed with seeded random databases, SCC-stratified
// evaluation (EvalOptions::use_strata) must produce the same least
// fixpoint — every relation, as a tuple set — as the unstratified engine,
// across naive/semi-naive and serial/parallel arms; and goal-directed
// rule pruning (ContainmentOptions / CanonicalDbOptions /
// LinearContainmentOptions / BuildPtreesAutomaton `prune_unreachable`)
// must leave every verdict and counterexample witness byte-identical
// while shrinking the alphabets and per-round rule set. Also pins the
// EvalStats strata accounting and the PruneForEvaluation active-domain
// guard end to end.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/analysis/stratify.h"
#include "src/containment/decider.h"
#include "src/containment/linear.h"
#include "src/containment/ptrees_automaton.h"
#include "src/containment/ucq_in_datalog.h"
#include "src/engine/eval.h"
#include "src/engine/random_db.h"
#include "src/generators/examples.h"
#include "src/util/strings.h"
#include "tests/test_util.h"

namespace datalog {
namespace {

// --- stratified evaluation: same fixpoint on every arm -----------------

// Both databases come from evaluating the same program over the same EDB,
// so dictionaries and encodings agree; only row order may differ, which
// Relation::operator== (set comparison) absorbs.
void ExpectSameFixpoint(const Database& got, const Database& want,
                        const std::string& label) {
  ASSERT_EQ(got.predicates().size(), want.predicates().size()) << label;
  for (PredicateId id = 0;
       id < static_cast<PredicateId>(want.predicates().size()); ++id) {
    const std::string& name = want.predicates().NameOf(id);
    PredicateId got_id = got.predicates().Lookup(name);
    ASSERT_NE(got_id, kNoPredicate) << label << " missing " << name;
    EXPECT_TRUE(got.RelationOf(got_id) == want.RelationOf(id))
        << label << " differs on " << name;
  }
}

struct StrataCase {
  std::string name;
  Program program;
  int expected_strata;
};

std::vector<StrataCase> StrataCases() {
  std::vector<StrataCase> cases;
  cases.push_back({"tc", TransitiveClosureProgram("e", "e"), 1});
  cases.push_back({"layered", MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
    q(X, Y) :- p(X, Y), p(Y, X).
    r(X) :- q(X, X).
  )"), 3});
  cases.push_back({"mutual", MustParseProgram(R"(
    odd(X, Y) :- e(X, Y).
    odd(X, Y) :- even(X, Z), e(Z, Y).
    even(X, Y) :- odd(X, Z), e(Z, Y).
    reach(X, Y) :- odd(X, Y).
    reach(X, Y) :- even(X, Y).
    top(X) :- reach(X, X).
  )"), 3});
  cases.push_back({"dist3", DistProgram(3), 4});
  // Unsafe base cases (active-domain semantics) under stratification;
  // dist0..2 and distle0..2 are each their own SCC.
  cases.push_back({"distle2", DistLeProgram(2), 6});
  return cases;
}

TEST(StratifiedEvalTest, DifferentialAgainstUnstratifiedArms) {
  for (const StrataCase& c : StrataCases()) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      RandomDbOptions db_options;
      db_options.domain_size = 4;
      db_options.tuples_per_relation = 6;
      db_options.seed = seed;
      Database edb = RandomDatabaseFor(c.program, db_options);

      EvalOptions reference_options;
      reference_options.use_strata = false;
      StatusOr<Database> reference =
          EvaluateProgram(c.program, edb, reference_options);
      ASSERT_TRUE(reference.ok()) << c.name << " " << reference.status();

      struct Arm {
        const char* name;
        bool semi_naive;
        bool use_strata;
        int num_threads;
      };
      const Arm arms[] = {
          {"semi/strata/serial", true, true, 1},
          {"semi/strata/pool", true, true, 3},
          {"semi/flat/pool", true, false, 3},
          {"naive/strata/serial", false, true, 1},
          {"naive/flat/serial", false, false, 1},
      };
      for (const Arm& arm : arms) {
        EvalOptions options;
        options.semi_naive = arm.semi_naive;
        options.use_strata = arm.use_strata;
        options.num_threads = arm.num_threads;
        EvalStats stats;
        StatusOr<Database> got =
            EvaluateProgram(c.program, edb, options, &stats);
        ASSERT_TRUE(got.ok()) << c.name << " " << arm.name << " "
                              << got.status();
        ExpectSameFixpoint(
            *got, *reference,
            StrCat(c.name, " seed=", seed, " arm=", arm.name));
        if (arm.use_strata) {
          EXPECT_EQ(stats.strata, c.expected_strata)
              << c.name << " " << arm.name;
        } else {
          EXPECT_EQ(stats.strata, 1) << c.name << " " << arm.name;
          EXPECT_EQ(stats.rounds_saved, 0u) << c.name << " " << arm.name;
        }
        if (arm.num_threads > 1) {
          // Every round of every stratum runs as a staged parallel round.
          EXPECT_EQ(stats.rounds_parallel, stats.iterations)
              << c.name << " " << arm.name;
        }
      }
    }
  }
}

TEST(StratifiedEvalTest, MultiStratumProgramSavesRounds) {
  Database edb;
  edb.AddFact("e", {"a", "b"});
  edb.AddFact("e", {"b", "c"});
  edb.AddFact("e", {"c", "a"});
  EvalStats stats;
  EvalOptions options;  // defaults: semi-naive, strata on
  StatusOr<Database> result =
      EvaluateProgram(DistProgram(3), edb, options, &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(stats.strata, 4);
  // Each stratum's rounds skip the other strata's rules; a flat fixpoint
  // would have evaluated them all every round.
  EXPECT_GT(stats.rounds_saved, 0u);
}

TEST(StratifiedEvalTest, SingleStratumDegeneratesToFlatFixpoint) {
  Database edb;
  edb.AddFact("e", {"a", "b"});
  edb.AddFact("e", {"b", "c"});
  Program tc = TransitiveClosureProgram("e", "e");
  EvalStats with_strata;
  EvalStats without;
  EvalOptions on;
  EvalOptions off;
  off.use_strata = false;
  ASSERT_TRUE(EvaluateProgram(tc, edb, on, &with_strata).ok());
  ASSERT_TRUE(EvaluateProgram(tc, edb, off, &without).ok());
  EXPECT_EQ(with_strata.strata, 1);
  EXPECT_EQ(with_strata.rounds_saved, 0u);
  EXPECT_EQ(with_strata.iterations, without.iterations);
  EXPECT_EQ(with_strata.join_probes, without.join_probes);
}

// --- decider: goal-directed rule pruning -------------------------------

// TC plus two unreachable rules, interleaved with the real ones: a
// self-recursive island that *reads* the goal predicate (reachability is
// over head predicates, so it still cannot contribute to a p-proof) and a
// rule carrying a constant.
Program TcWithJunk() {
  return MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    junk(X) :- p(X, X), junk(X).
    p(X, Y) :- e(X, Z), p(Z, Y).
    junk2(X) :- g(X, a).
  )");
}

void ExpectSameDecision(const ContainmentDecision& got,
                        const ContainmentDecision& want,
                        const std::string& label) {
  EXPECT_EQ(got.contained, want.contained) << label;
  ASSERT_EQ(got.counterexample.has_value(), want.counterexample.has_value())
      << label;
  if (got.counterexample.has_value()) {
    EXPECT_EQ(got.counterexample->ToString(),
              want.counterexample->ToString())
        << label;
  }
}

TEST(DeciderPruneTest, VerdictAndWitnessIdenticalAcrossPruneArms) {
  Program program = TcWithJunk();
  struct ThetaCase {
    std::string name;
    UnionOfCqs theta;
  };
  std::vector<ThetaCase> thetas;
  thetas.push_back({"paths3", PathQueries(3)});  // not contained: witness
  {
    UnionOfCqs top;
    top.Add(MustParseCq("p(X, Y) :- ."));
    thetas.push_back({"top", std::move(top)});  // contained
  }
  for (const ThetaCase& t : thetas) {
    for (bool use_ir : {true, false}) {
      ContainmentOptions with_prune;
      with_prune.use_ir = use_ir;
      with_prune.prune_unreachable = true;
      ContainmentOptions without_prune = with_prune;
      without_prune.prune_unreachable = false;
      StatusOr<ContainmentDecision> pruned =
          DecideDatalogInUcq(program, "p", t.theta, with_prune);
      StatusOr<ContainmentDecision> full =
          DecideDatalogInUcq(program, "p", t.theta, without_prune);
      ASSERT_TRUE(pruned.ok()) << t.name << " " << pruned.status();
      ASSERT_TRUE(full.ok()) << t.name << " " << full.status();
      ExpectSameDecision(*pruned, *full,
                         StrCat(t.name, " use_ir=", use_ir ? 1 : 0));
      EXPECT_EQ(pruned->stats.rules_pruned, 2u) << t.name;
      EXPECT_EQ(full->stats.rules_pruned, 0u) << t.name;
    }
  }
}

TEST(DeciderPruneTest, AllReachableProgramPrunesNothing) {
  ContainmentOptions options;
  StatusOr<ContainmentDecision> decision = DecideDatalogInUcq(
      TransitiveClosureProgram("e", "e"), "p", PathQueries(3), options);
  ASSERT_TRUE(decision.ok()) << decision.status();
  EXPECT_EQ(decision->stats.rules_pruned, 0u);
}

// --- canonical-database direction --------------------------------------

TEST(CanonicalDbPruneTest, VerdictIdenticalAcrossPruneArms) {
  Program program = TcWithJunk();
  UnionOfCqs theta = PathQueries(2);  // each path CQ is contained in TC
  for (bool prune : {true, false}) {
    CanonicalDbOptions options;
    options.prune_unreachable = prune;
    std::size_t failing = 99;
    StatusOr<bool> contained =
        IsUcqContainedInDatalog(theta, program, "p", nullptr, options,
                                &failing);
    ASSERT_TRUE(contained.ok()) << contained.status();
    EXPECT_TRUE(*contained) << "prune=" << prune;
  }
  // Not-contained side: a CQ the program cannot derive.
  UnionOfCqs miss;
  miss.Add(MustParseCq("p(X, Y) :- f(X, Y)."));
  std::size_t failing_pruned = 99;
  std::size_t failing_full = 99;
  CanonicalDbOptions on;
  CanonicalDbOptions off;
  off.prune_unreachable = false;
  StatusOr<bool> pruned =
      IsUcqContainedInDatalog(miss, program, "p", nullptr, on,
                              &failing_pruned);
  StatusOr<bool> full =
      IsUcqContainedInDatalog(miss, program, "p", nullptr, off,
                              &failing_full);
  ASSERT_TRUE(pruned.ok() && full.ok());
  EXPECT_FALSE(*pruned);
  EXPECT_FALSE(*full);
  EXPECT_EQ(failing_pruned, failing_full);
}

TEST(CanonicalDbPruneTest, ActiveDomainGuardKeepsVerdictsEqual) {
  // The unsafe retained rule plus a junk-only constant is exactly the
  // corner where naive pruning would change the engine's answer;
  // PruneForEvaluation declines there, so both arms must agree.
  ParseOptions raw;
  raw.lint = false;
  StatusOr<Program> program = ParseProgram(R"(
    zero(X) :- .
    p(X) :- zero(X).
    junk(X) :- e(X, a).
  )", raw);
  ASSERT_TRUE(program.ok()) << program.status();
  // Head variable X of θ ranges over the canonical database's active
  // domain, which includes the program constant `a`.
  UnionOfCqs theta;
  theta.Add(MustParseCq("p(X) :- ."));
  CanonicalDbOptions on;
  CanonicalDbOptions off;
  off.prune_unreachable = false;
  StatusOr<bool> pruned =
      IsUcqContainedInDatalog(theta, *program, "p", nullptr, on);
  StatusOr<bool> full =
      IsUcqContainedInDatalog(theta, *program, "p", nullptr, off);
  ASSERT_TRUE(pruned.ok()) << pruned.status();
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(*pruned, *full);
}

// --- linear fragment and ptrees alphabet -------------------------------

TEST(LinearPruneTest, PruningShrinksAlphabetWithoutChangingVerdict) {
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
    junk(X) :- f(X, X), junk(X).
  )");
  for (int max_length : {3, 8}) {
    UnionOfCqs theta = PathQueries(max_length);
    LinearContainmentOptions on;
    LinearContainmentOptions off;
    off.prune_unreachable = false;
    StatusOr<LinearContainmentResult> pruned =
        DecideLinearDatalogInUcq(program, "p", theta, on);
    StatusOr<LinearContainmentResult> full =
        DecideLinearDatalogInUcq(program, "p", theta, off);
    ASSERT_TRUE(pruned.ok()) << pruned.status();
    ASSERT_TRUE(full.ok()) << full.status();
    EXPECT_EQ(pruned->contained, full->contained);
    ASSERT_EQ(pruned->counterexample.has_value(),
              full->counterexample.has_value());
    if (pruned->counterexample.has_value()) {
      EXPECT_EQ(pruned->counterexample->ToString(),
                full->counterexample->ToString());
    }
    EXPECT_LT(pruned->alphabet_size, full->alphabet_size);
  }
}

TEST(LinearPruneTest, PruningAdmitsNonlinearUnreachablePart) {
  // The junk island is nonlinear in IDB; only the pruned arm can decide
  // this program at all.
  Program program = MustParseProgram(R"(
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), p(Z, Y).
    junk(X, Y) :- junk(X, Z), junk(Z, Y).
  )");
  LinearContainmentOptions on;
  StatusOr<LinearContainmentResult> pruned =
      DecideLinearDatalogInUcq(program, "p", PathQueries(3), on);
  ASSERT_TRUE(pruned.ok()) << pruned.status();
  EXPECT_FALSE(pruned->contained);

  LinearContainmentOptions off;
  off.prune_unreachable = false;
  StatusOr<LinearContainmentResult> full =
      DecideLinearDatalogInUcq(program, "p", PathQueries(3), off);
  EXPECT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kInvalidArgument);
}

TEST(PtreesPruneTest, PruningShrinksPtreesAlphabet) {
  Program program = TcWithJunk();
  StatusOr<PtreesAutomaton> pruned = BuildPtreesAutomaton(
      program, "p", ExecutionLimits(), /*use_ir=*/true,
      /*prune_unreachable=*/true);
  StatusOr<PtreesAutomaton> full = BuildPtreesAutomaton(
      program, "p", ExecutionLimits(), /*use_ir=*/true,
      /*prune_unreachable=*/false);
  ASSERT_TRUE(pruned.ok()) << pruned.status();
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_LT(pruned->alphabet.num_labels(), full->alphabet.num_labels());
  // TC alone builds the same alphabet as the pruned junk program: the
  // prune is exactly "restrict to the reachable subprogram".
  StatusOr<PtreesAutomaton> tc_only =
      BuildPtreesAutomaton(TransitiveClosureProgram("e", "e"), "p");
  ASSERT_TRUE(tc_only.ok()) << tc_only.status();
  EXPECT_EQ(pruned->alphabet.num_labels(), tc_only->alphabet.num_labels());
}

}  // namespace
}  // namespace datalog
